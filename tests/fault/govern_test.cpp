// Per-request governance (fault::solve_many_governed): isolation of
// poisoned requests, shed policies, admission bounds, watchdog arming, and
// the tentpole acceptance — a mid-solve cancellation returns within a fixed
// poll-count bound without wedging the pool.
#include "fault/govern.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/schedule.hpp"
#include "core/schedule_io.hpp"
#include "core/solve_many.hpp"
#include "support/thread_pool.hpp"
#include "trace/generators.hpp"

namespace tveg::fault {
namespace {

channel::RadioParams unit_radio() {
  channel::RadioParams r;
  r.noise_density = 1.0;
  r.decoding_threshold_db = 0.0;
  r.path_loss_exponent = 2.0;
  r.epsilon = 0.01;
  r.w_max = support::kInf;
  return r;
}

trace::ContactTrace sample_trace(std::uint64_t seed = 1, int nodes = 8,
                                 Time horizon = 200) {
  trace::SnapshotConfig cfg;
  cfg.nodes = nodes;
  cfg.slot = 20;
  cfg.horizon = horizon;
  cfg.p = 0.35;
  cfg.seed = seed;
  return trace::generate_snapshots(cfg);
}

std::string serialized(const core::Schedule& schedule) {
  std::ostringstream out;
  core::write_schedule(out, schedule);
  return out.str();
}

TEST(Govern, CleanBatchIsByteIdenticalToUngoverned) {
  const trace::ContactTrace t = sample_trace();
  const core::Tveg tveg(t, unit_radio(),
                        {.model = channel::ChannelModel::kStep});
  const DiscreteTimeSet dts = tveg.build_dts();

  std::vector<core::SolveRequest> requests;
  for (NodeId s = 0; s < 8; ++s)
    requests.push_back({.source = s, .deadline = 200.0});
  requests.push_back({.source = 0, .deadline = 120.0});

  const auto baseline = core::solve_many(tveg, dts, requests, {});
  const auto governed = solve_many_governed(tveg, dts, requests, {});
  ASSERT_EQ(governed.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(governed[i].outcome.ok()) << "request " << i;
    EXPECT_EQ(governed[i].rung, SolverRung::kEedcb);
    EXPECT_FALSE(governed[i].shed);
    EXPECT_FALSE(governed[i].degraded());
    EXPECT_EQ(serialized(governed[i].outcome.value().schedule),
              serialized(baseline[i].schedule))
        << "request " << i;
  }
}

TEST(Govern, PoisonedRequestCostsExactlyItsOwnSlot) {
  const trace::ContactTrace t = sample_trace();
  const core::Tveg tveg(t, unit_radio(),
                        {.model = channel::ChannelModel::kStep});
  const DiscreteTimeSet dts = tveg.build_dts();

  // Source 100 does not exist: the solve throws deep inside the pipeline.
  std::vector<core::SolveRequest> poisoned;
  poisoned.push_back({.source = 0, .deadline = 200.0});
  poisoned.push_back({.source = 100, .deadline = 200.0});
  poisoned.push_back({.source = 1, .deadline = 200.0});

  // The ungoverned batch aborts wholesale...
  EXPECT_THROW(core::solve_many(tveg, dts, poisoned, {}), std::exception);

  // ...the governed batch returns three per-request outcomes.
  const auto governed = solve_many_governed(tveg, dts, poisoned, {});
  ASSERT_EQ(governed.size(), 3u);
  ASSERT_TRUE(governed[0].outcome.ok());
  ASSERT_FALSE(governed[1].outcome.ok());
  EXPECT_EQ(governed[1].outcome.error().code, support::ErrorCode::kInternal);
  ASSERT_TRUE(governed[2].outcome.ok());

  // And the survivors are byte-identical to a baseline that never saw the
  // poison.
  const std::vector<core::SolveRequest> clean = {poisoned[0], poisoned[2]};
  const auto baseline = core::solve_many(tveg, dts, clean, {});
  EXPECT_EQ(serialized(governed[0].outcome.value().schedule),
            serialized(baseline[0].schedule));
  EXPECT_EQ(serialized(governed[2].outcome.value().schedule),
            serialized(baseline[1].schedule));
}

TEST(Govern, ZeroBudgetDegradesEveryRequestToGreed) {
  const trace::ContactTrace t = sample_trace();
  const core::Tveg tveg(t, unit_radio(),
                        {.model = channel::ChannelModel::kStep});
  const DiscreteTimeSet dts = tveg.build_dts();

  std::vector<core::SolveRequest> requests;
  for (NodeId s = 0; s < 4; ++s)
    requests.push_back({.source = s, .deadline = 200.0});

  GovernOptions options;
  options.request_budget_ms = 0;
  const auto governed = solve_many_governed(tveg, dts, requests, options);
  for (std::size_t i = 0; i < governed.size(); ++i) {
    ASSERT_TRUE(governed[i].outcome.ok()) << "request " << i;
    EXPECT_EQ(governed[i].rung, SolverRung::kGreed) << "request " << i;
    ASSERT_TRUE(governed[i].degraded()) << "request " << i;
    EXPECT_EQ(governed[i].descents.front().code,
              support::ErrorCode::kTimeout);
    const core::TmedbInstance inst{&tveg, requests[i].source, 200.0};
    EXPECT_TRUE(core::check_feasibility(
                    inst, governed[i].outcome.value().schedule)
                    .feasible)
        << "request " << i;
  }
}

TEST(Govern, ErrorPolicyReturnsTimeoutsInsteadOfSchedules) {
  const trace::ContactTrace t = sample_trace();
  const core::Tveg tveg(t, unit_radio(),
                        {.model = channel::ChannelModel::kStep});

  GovernOptions options;
  options.request_budget_ms = 0;
  options.shed_policy = ShedPolicy::kError;
  // The dts-building overload, for coverage of both entry points.
  const auto governed = solve_many_governed(
      tveg, {{.source = 0, .deadline = 200.0}}, options);
  ASSERT_EQ(governed.size(), 1u);
  ASSERT_FALSE(governed[0].outcome.ok());
  EXPECT_EQ(governed[0].outcome.error().code, support::ErrorCode::kTimeout);
  EXPECT_TRUE(governed[0].degraded());
}

TEST(Govern, AdmissionBoundShedsTheTail) {
  const trace::ContactTrace t = sample_trace();
  const core::Tveg tveg(t, unit_radio(),
                        {.model = channel::ChannelModel::kStep});
  const DiscreteTimeSet dts = tveg.build_dts();

  std::vector<core::SolveRequest> requests;
  for (NodeId s = 0; s < 6; ++s)
    requests.push_back({.source = s, .deadline = 200.0});

  GovernOptions options;
  options.max_inflight = 2;
  options.shed_policy = ShedPolicy::kError;
  const auto errored = solve_many_governed(tveg, dts, requests, options);
  ASSERT_EQ(errored.size(), 6u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_TRUE(errored[i].outcome.ok()) << "request " << i;
    EXPECT_FALSE(errored[i].shed);
  }
  for (std::size_t i = 2; i < 6; ++i) {
    EXPECT_TRUE(errored[i].shed) << "request " << i;
    EXPECT_FALSE(errored[i].outcome.ok()) << "request " << i;
  }

  // Under the degrade policy the shed tail still gets GREED schedules.
  options.shed_policy = ShedPolicy::kDegrade;
  const auto degraded = solve_many_governed(tveg, dts, requests, options);
  for (std::size_t i = 2; i < 6; ++i) {
    EXPECT_TRUE(degraded[i].shed) << "request " << i;
    ASSERT_TRUE(degraded[i].outcome.ok()) << "request " << i;
    EXPECT_EQ(degraded[i].rung, SolverRung::kGreed);
  }
}

TEST(Govern, WatchdogArmedBatchStaysClean) {
  const trace::ContactTrace t = sample_trace();
  const core::Tveg tveg(t, unit_radio(),
                        {.model = channel::ChannelModel::kStep});
  const DiscreteTimeSet dts = tveg.build_dts();

  GovernOptions options;
  options.stall_ms = 60000;  // far beyond any solve here: must never fire
  const auto governed = solve_many_governed(
      tveg, dts, {{.source = 0, .deadline = 200.0}}, options);
  ASSERT_EQ(governed.size(), 1u);
  EXPECT_TRUE(governed[0].outcome.ok());
  EXPECT_FALSE(governed[0].degraded());
}

TEST(Govern, MidSolveCancelReturnsWithinAFixedPollBound) {
  // Tentpole acceptance: fire a request's CancelSource once its solve is
  // mid-pipeline (the heartbeat proves it is polling), then assert the
  // cancelled outcome lands within a fixed number of further polls and the
  // pool is immediately reusable.
  const trace::ContactTrace t = sample_trace(3, /*nodes=*/12, /*horizon=*/400);
  const core::Tveg tveg(t, unit_radio(),
                        {.model = channel::ChannelModel::kStep});
  const DiscreteTimeSet dts = tveg.build_dts();
  support::ThreadPool pool(4);

  GovernOptions options;
  options.shed_policy = ShedPolicy::kError;
  options.eedcb.method = core::SteinerMethod::kRecursiveGreedy;
  options.eedcb.steiner_level = 2;
  options.eedcb.pool = &pool;

  const std::vector<support::CancelSource> cancels(1);
  std::atomic<bool> solve_done{false};
  std::atomic<std::uint64_t> polls_at_cancel{0};
  std::thread firer([&] {
    // Wait for the solve to prove it is alive (a few hundred budget polls),
    // then cancel. Bail out if the solve somehow finishes first.
    while (cancels[0].polls() < 300 && !solve_done.load()) {
      std::this_thread::yield();
    }
    polls_at_cancel.store(cancels[0].polls());
    cancels[0].request_cancel();
  });

  const auto governed = solve_many_governed(
      tveg, dts, {{.source = 0, .deadline = 400.0}}, options, cancels);
  solve_done.store(true);
  firer.join();

  ASSERT_EQ(governed.size(), 1u);
  ASSERT_FALSE(governed[0].outcome.ok())
      << "the solve finished before the cancel landed — grow the instance";
  EXPECT_EQ(governed[0].outcome.error().code, support::ErrorCode::kCancelled);
  EXPECT_FALSE(governed[0].degraded());

  // The fixed bound: once the cancel is visible every poller throws on its
  // next poll, so the tail is a handful of in-flight polls per thread —
  // 4096 is orders of magnitude below the full solve's poll count.
  EXPECT_LE(cancels[0].polls() - polls_at_cancel.load(), 4096u);

  // No pool task is still running: a fresh loop completes, and a clean
  // governed solve on the same pool succeeds.
  std::atomic<std::size_t> ran{0};
  pool.parallel_for(0, 1000, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 1000u);
  const auto clean = solve_many_governed(
      tveg, dts, {{.source = 0, .deadline = 400.0}}, options);
  ASSERT_EQ(clean.size(), 1u);
  EXPECT_TRUE(clean[0].outcome.ok());
}

}  // namespace
}  // namespace tveg::fault
