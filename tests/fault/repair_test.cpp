#include "fault/repair.hpp"

#include <gtest/gtest.h>

#include "core/schedule.hpp"
#include "fault/fault_plan.hpp"
#include "support/math.hpp"

namespace tveg::fault {
namespace {

using support::kInf;

channel::RadioParams unit_radio() {
  channel::RadioParams r;
  r.noise_density = 1.0;
  r.decoding_threshold_db = 0.0;
  r.path_loss_exponent = 2.0;
  r.epsilon = 0.01;
  r.w_max = support::kInf;
  return r;
}

/// Chain 0 — 1 — 2 — 3 with strictly ordered contact windows.
trace::ContactTrace chain_trace() {
  trace::ContactTrace t(4, 60.0);
  t.add({0, 1, 0.0, 10.0, 1.0});
  t.add({1, 2, 20.0, 30.0, 1.0});
  t.add({2, 3, 40.0, 50.0, 1.0});
  t.sort();
  return t;
}

/// The planned relay schedule for the chain (unit costs reach distance 1).
core::Schedule chain_schedule() {
  core::Schedule s;
  s.add(0, 5.0, 1.0);
  s.add(1, 25.0, 1.0);
  s.add(2, 45.0, 1.0);
  return s;
}

TEST(Repair, ReplayMatchesPlanOnCleanInstance) {
  const trace::ContactTrace t = chain_trace();
  const core::Tveg tveg(t, unit_radio(),
                        {.model = channel::ChannelModel::kStep});
  const core::TmedbInstance inst{&tveg, 0, 60.0};

  std::vector<char> fired;
  const auto informed = replay_informed_times(inst, chain_schedule(), &fired);
  ASSERT_EQ(informed.size(), 4u);
  EXPECT_DOUBLE_EQ(informed[0], 0.0);
  EXPECT_DOUBLE_EQ(informed[1], 5.0);
  EXPECT_DOUBLE_EQ(informed[2], 25.0);
  EXPECT_DOUBLE_EQ(informed[3], 45.0);
  for (char f : fired) EXPECT_TRUE(f);
}

TEST(Repair, NoFaultMeansNoPatch) {
  const trace::ContactTrace t = chain_trace();
  const core::Tveg tveg(t, unit_radio(),
                        {.model = channel::ChannelModel::kStep});
  const core::TmedbInstance inst{&tveg, 0, 60.0};
  const DiscreteTimeSet dts = tveg.build_dts();

  const RepairOutcome out =
      repair_schedule(inst, inst, dts, chain_schedule());
  EXPECT_FALSE(out.diverged());
  EXPECT_EQ(out.uncovered_before, 0u);
  EXPECT_EQ(out.uncovered_after, 0u);
  EXPECT_TRUE(out.patch.empty());
  EXPECT_EQ(out.repaired.size(), chain_schedule().size());
  EXPECT_DOUBLE_EQ(out.detect_time, 60.0);
}

TEST(Repair, DropoutScenarioStrictlyReducesUncoveredNodes) {
  // Tentpole acceptance (c): the planned 1→2 contact window vanishes (edge
  // dropout), so the planned relay entry at t=25 delivers nothing and nodes
  // 2 and 3 are stranded. The pair comes back at [35, 38] — only an
  // incremental re-solve from the informed set can exploit it.
  const trace::ContactTrace planned_trace = chain_trace();
  trace::ContactTrace faulted_trace(4, 60.0);
  faulted_trace.add({0, 1, 0.0, 10.0, 1.0});
  faulted_trace.add({1, 2, 35.0, 38.0, 1.0});  // the replacement window
  faulted_trace.add({2, 3, 40.0, 50.0, 1.0});
  faulted_trace.sort();

  const core::Tveg planned_tveg(planned_trace, unit_radio(),
                                {.model = channel::ChannelModel::kStep});
  const core::Tveg faulted_tveg(faulted_trace, unit_radio(),
                                {.model = channel::ChannelModel::kStep});
  const core::TmedbInstance planned_inst{&planned_tveg, 0, 60.0};
  const core::TmedbInstance faulted_inst{&faulted_tveg, 0, 60.0};
  const DiscreteTimeSet dts = faulted_tveg.build_dts();

  const RepairOutcome out =
      repair_schedule(planned_inst, faulted_inst, dts, chain_schedule());

  ASSERT_TRUE(out.diverged());
  EXPECT_EQ(out.uncovered_before, 2u);  // nodes 2 and 3
  // Divergence is detected when node 2's expected arrival (t=25) is missed.
  EXPECT_DOUBLE_EQ(out.detect_time, 25.0);
  // Repair must strictly reduce the uncovered count — here all the way.
  EXPECT_LT(out.uncovered_after, out.uncovered_before);
  EXPECT_EQ(out.uncovered_after, 0u);
  EXPECT_FALSE(out.patch.empty());

  // The repaired schedule must actually deliver on the faulted reality.
  const auto informed = replay_informed_times(faulted_inst, out.repaired);
  for (Time when : informed) EXPECT_LT(when, kInf);
}

TEST(Repair, UnreachableNodeStaysUncoveredButOthersRecover) {
  // Node 3's only contact disappears entirely: repair recovers node 2 via
  // the replacement window but cannot invent connectivity for 3.
  const trace::ContactTrace planned_trace = chain_trace();
  trace::ContactTrace faulted_trace(4, 60.0);
  faulted_trace.add({0, 1, 0.0, 10.0, 1.0});
  faulted_trace.add({1, 2, 35.0, 38.0, 1.0});
  faulted_trace.sort();

  const core::Tveg planned_tveg(planned_trace, unit_radio(),
                                {.model = channel::ChannelModel::kStep});
  const core::Tveg faulted_tveg(faulted_trace, unit_radio(),
                                {.model = channel::ChannelModel::kStep});
  const core::TmedbInstance planned_inst{&planned_tveg, 0, 60.0};
  const core::TmedbInstance faulted_inst{&faulted_tveg, 0, 60.0};
  const DiscreteTimeSet dts = faulted_tveg.build_dts();

  const RepairOutcome out =
      repair_schedule(planned_inst, faulted_inst, dts, chain_schedule());
  ASSERT_TRUE(out.diverged());
  EXPECT_EQ(out.uncovered_before, 2u);
  EXPECT_EQ(out.uncovered_after, 1u);  // node 3 is physically unreachable
  EXPECT_LT(out.uncovered_after, out.uncovered_before);
}

TEST(Repair, RepairedScheduleKeepsOnlyFiredPlannedTransmissions) {
  // The planned 2→3 entry never fires on the faulted reality (relay 2 is
  // uninformed at t=45 without repair... but with the patch informing 2 at
  // 35, the planned t=45 entry is NOT part of `repaired` because repaired
  // collects fired-under-no-repair transmissions plus the patch. Assert
  // that exact composition.
  const trace::ContactTrace planned_trace = chain_trace();
  trace::ContactTrace faulted_trace(4, 60.0);
  faulted_trace.add({0, 1, 0.0, 10.0, 1.0});
  faulted_trace.add({1, 2, 35.0, 38.0, 1.0});
  faulted_trace.add({2, 3, 40.0, 50.0, 1.0});
  faulted_trace.sort();

  const core::Tveg planned_tveg(planned_trace, unit_radio(),
                                {.model = channel::ChannelModel::kStep});
  const core::Tveg faulted_tveg(faulted_trace, unit_radio(),
                                {.model = channel::ChannelModel::kStep});
  const core::TmedbInstance planned_inst{&planned_tveg, 0, 60.0};
  const core::TmedbInstance faulted_inst{&faulted_tveg, 0, 60.0};
  const DiscreteTimeSet dts = faulted_tveg.build_dts();

  const RepairOutcome out = repair_schedule(planned_inst, faulted_inst, dts,
                                            chain_schedule());
  EXPECT_EQ(out.repaired.size(), out.patch.size() + 2u);  // 0@5 and 1@25
}

}  // namespace
}  // namespace tveg::fault
