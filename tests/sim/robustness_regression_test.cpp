// Tier-1 promotion of the robustness_future_work presence-reliability
// sweep: small instance, reduced trials, fixed seeds, loose monotone
// assertions. Guards the non-deterministic-TVG evaluation path (and the new
// forced-tx-failure model) against regressions without a bench run.
#include <gtest/gtest.h>

#include "fault/fault_plan.hpp"
#include "sim/experiment.hpp"
#include "trace/generators.hpp"

namespace tveg::sim {
namespace {

const Workbench& small_bench() {
  static const Workbench* bench = [] {
    trace::HaggleLikeConfig cfg;
    cfg.nodes = 12;
    cfg.horizon = 6000;
    cfg.pair_probability = 0.8;
    cfg.activation_ramp_end = 500;
    cfg.seed = 3;
    return new Workbench(trace::generate_haggle_like(cfg), paper_radio());
  }();
  return *bench;
}

TEST(RobustnessRegression, DeliveryDegradesMonotonicallyWithEdgeLoss) {
  const Workbench& bench = small_bench();
  const auto outcome = bench.run(Algorithm::kFrEedcb, 0, 4000.0, 1);
  ASSERT_TRUE(outcome.covered_all);
  ASSERT_TRUE(outcome.allocation_feasible);

  double previous = 1.1;
  for (double q : {1.0, 0.8, 0.6}) {
    McOptions mc;
    mc.trials = 300;
    mc.seed = 7;
    mc.presence_reliability = q;
    const auto stats =
        bench.delivery_under_fading(0, outcome.schedule, mc);
    EXPECT_GT(stats.mean_delivery_ratio, 0.0) << "q=" << q;
    EXPECT_LE(stats.mean_delivery_ratio, 1.0) << "q=" << q;
    // Loose monotonicity: killing more edges must not *help* (small MC
    // noise tolerance — the seeds are fixed, so this is deterministic).
    EXPECT_LE(stats.mean_delivery_ratio, previous + 0.05) << "q=" << q;
    previous = stats.mean_delivery_ratio;
  }
}

TEST(RobustnessRegression, FullReliabilityBeatsHeavyLossClearly) {
  const Workbench& bench = small_bench();
  const auto outcome = bench.run(Algorithm::kFrEedcb, 0, 4000.0, 1);
  ASSERT_TRUE(outcome.covered_all && outcome.allocation_feasible);

  McOptions reliable;
  reliable.trials = 300;
  reliable.seed = 7;
  McOptions lossy = reliable;
  lossy.presence_reliability = 0.5;
  const auto d_rel = bench.delivery_under_fading(0, outcome.schedule,
                                                 reliable);
  const auto d_loss = bench.delivery_under_fading(0, outcome.schedule, lossy);
  EXPECT_GT(d_rel.mean_delivery_ratio, d_loss.mean_delivery_ratio);
}

TEST(RobustnessRegression, SimulationIsDeterministicUnderFixedSeed) {
  const Workbench& bench = small_bench();
  const auto outcome = bench.run(Algorithm::kFrEedcb, 0, 4000.0, 1);
  ASSERT_TRUE(outcome.covered_all && outcome.allocation_feasible);

  McOptions mc;
  mc.trials = 200;
  mc.seed = 11;
  mc.presence_reliability = 0.8;
  mc.tx_faults = fault::TxFaultModel(11, 0.1);
  const auto first = bench.delivery_under_fading(0, outcome.schedule, mc);
  const auto second = bench.delivery_under_fading(0, outcome.schedule, mc);
  EXPECT_DOUBLE_EQ(first.mean_delivery_ratio, second.mean_delivery_ratio);
  EXPECT_DOUBLE_EQ(first.full_delivery_fraction,
                   second.full_delivery_fraction);
}

TEST(RobustnessRegression, ForcedTxFailuresReduceDelivery) {
  const Workbench& bench = small_bench();
  const auto outcome = bench.run(Algorithm::kFrEedcb, 0, 4000.0, 1);
  ASSERT_TRUE(outcome.covered_all && outcome.allocation_feasible);

  McOptions clean;
  clean.trials = 300;
  clean.seed = 5;
  McOptions faulty = clean;
  faulty.tx_faults = fault::TxFaultModel(5, 0.5);
  const auto d_clean = bench.delivery_under_fading(0, outcome.schedule,
                                                   clean);
  const auto d_fault = bench.delivery_under_fading(0, outcome.schedule,
                                                   faulty);
  // Killing half of all transmissions must visibly hurt.
  EXPECT_LT(d_fault.mean_delivery_ratio,
            d_clean.mean_delivery_ratio - 0.05);
}

}  // namespace
}  // namespace tveg::sim
