// Cross-component consistency: the analytic cascade (Eq. 6 semantics in
// core/schedule.cpp) and the Monte-Carlo executor (sim/monte_carlo.cpp)
// implement the same stochastic process two different ways — their answers
// must agree.
#include <gtest/gtest.h>

#include <cmath>

#include "core/eedcb.hpp"
#include "sim/monte_carlo.hpp"
#include "support/math.hpp"
#include "support/rng.hpp"
#include "trace/generators.hpp"

namespace tveg::sim {
namespace {

channel::RadioParams unit_radio() {
  channel::RadioParams r;
  r.noise_density = 1.0;
  r.decoding_threshold_db = 0.0;
  r.path_loss_exponent = 2.0;
  r.epsilon = 0.01;
  r.w_max = support::kInf;
  return r;
}

class ConsistencySeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConsistencySeeds, FeasibleStepScheduleDeliversFullyInSimulation) {
  trace::SnapshotConfig cfg;
  cfg.nodes = 8;
  cfg.slot = 25;
  cfg.horizon = 200;
  cfg.p = 0.3;
  cfg.seed = GetParam();
  const core::Tveg tveg(trace::generate_snapshots(cfg), unit_radio(),
                        {.model = channel::ChannelModel::kStep});
  const core::TmedbInstance inst{&tveg, 0, 200.0};
  const auto r = run_eedcb(inst);
  if (!r.covered_all) GTEST_SKIP() << "instance not connected";
  ASSERT_TRUE(core::check_feasibility(inst, r.schedule).feasible);
  // Deterministic channel: the simulator must agree with the checker
  // exactly, on every trial.
  const auto stats = simulate_delivery(tveg, 0, r.schedule, {.trials = 50});
  EXPECT_DOUBLE_EQ(stats.mean_delivery_ratio, 1.0);
  EXPECT_DOUBLE_EQ(stats.full_delivery_fraction, 1.0);
}

TEST_P(ConsistencySeeds, CascadeProbabilitiesMatchMonteCarloFrequencies) {
  // Source-only schedules (every transmission by the source) make Eq. 6's
  // product exact — no relay-possession correlations — so the analytic
  // p_{i,T} and the per-node MC uninformed frequencies must agree within
  // binomial error.
  trace::SnapshotConfig cfg;
  cfg.nodes = 6;
  cfg.slot = 25;
  cfg.horizon = 200;
  cfg.p = 0.5;
  cfg.seed = GetParam() + 100;
  const core::Tveg tveg(trace::generate_snapshots(cfg), unit_radio(),
                        {.model = channel::ChannelModel::kRayleigh});
  const core::TmedbInstance inst{&tveg, 0, 200.0};

  // Random source transmissions at its DTS points, modest powers so the
  // probabilities are far from 0/1.
  const auto dts = tveg.build_dts();
  support::Rng rng(GetParam());
  core::Schedule s;
  for (Time t : dts.points(0)) {
    if (t + 1e-9 >= inst.deadline) break;
    if (tveg.graph().neighbors_at(0, t).empty()) continue;
    if (!rng.bernoulli(0.6)) continue;
    s.add(0, t, rng.uniform(0.5, 4.0));  // β is O(1–16) at d ∈ [1, 4]
  }
  if (s.empty()) GTEST_SKIP() << "no transmissions drawn";

  const auto p = uninformed_probabilities(inst, s, inst.deadline);

  // Empirical per-node uninformed frequency.
  const std::size_t trials = 20000;
  std::vector<std::size_t> uninformed_count(6, 0);
  for (std::size_t trial = 0; trial < trials; ++trial) {
    support::Rng trial_rng(GetParam() * 7919 + trial);
    std::vector<char> informed(6, 0);
    informed[0] = 1;
    for (const core::Transmission& tx : s.transmissions())
      for (NodeId j : tveg.graph().neighbors_at(0, tx.time)) {
        if (informed[static_cast<std::size_t>(j)]) continue;
        const double phi = tveg.failure_probability(0, j, tx.time, tx.cost);
        if (!trial_rng.bernoulli(phi)) informed[static_cast<std::size_t>(j)] = 1;
      }
    for (NodeId v = 0; v < 6; ++v)
      if (!informed[static_cast<std::size_t>(v)])
        ++uninformed_count[static_cast<std::size_t>(v)];
  }

  for (NodeId v = 0; v < 6; ++v) {
    const double freq = static_cast<double>(uninformed_count[v]) / trials;
    // Binomial 5σ band.
    const double sigma =
        std::sqrt(std::max(p[v] * (1 - p[v]), 1e-6) / trials);
    EXPECT_NEAR(freq, p[v], 5 * sigma + 1e-3) << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsistencySeeds,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace tveg::sim
