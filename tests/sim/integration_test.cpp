// End-to-end integration: the full paper pipeline (trace → TVEG → DTS →
// auxiliary graph → Steiner → schedule → NLP → Monte-Carlo evaluation) on
// each trace generator, at small scale.
#include <gtest/gtest.h>

#include "core/fr.hpp"
#include "sim/experiment.hpp"
#include "trace/generators.hpp"
#include "trace/io.hpp"

#include <sstream>

namespace tveg::sim {
namespace {

void run_full_pipeline(const trace::ContactTrace& trace, NodeId source,
                       Time deadline, const char* label) {
  const Workbench bench(trace, paper_radio());
  for (Algorithm a : kAllAlgorithms) {
    const auto outcome = bench.run(a, source, deadline, 11);
    if (!outcome.covered_all) continue;  // sparse generators may disconnect
    const auto& inst = fading_resistant(a)
                           ? bench.fading_instance(source, deadline)
                           : bench.step_instance(source, deadline);
    const auto report = core::check_feasibility(inst, outcome.schedule);
    EXPECT_TRUE(report.feasible)
        << label << "/" << algorithm_name(a) << ": " << report.reason;
    const auto delivery = bench.delivery_under_fading(
        source, outcome.schedule, {.trials = 300, .seed = 2});
    if (fading_resistant(a) && outcome.allocation_feasible) {
      EXPECT_GT(delivery.mean_delivery_ratio, 0.85)
          << label << "/" << algorithm_name(a);
    }
  }
}

TEST(Integration, HaggleLikeTrace) {
  trace::HaggleLikeConfig cfg;
  cfg.nodes = 10;
  cfg.horizon = 6000;
  cfg.activation_ramp_end = 1000;
  cfg.pair_probability = 0.6;
  cfg.seed = 21;
  run_full_pipeline(trace::generate_haggle_like(cfg), 0, 5000.0, "haggle");
}

TEST(Integration, RandomWaypointTrace) {
  trace::RandomWaypointConfig cfg;
  cfg.nodes = 8;
  cfg.horizon = 1500;
  cfg.area = 50.0;
  cfg.seed = 22;
  run_full_pipeline(trace::generate_random_waypoint(cfg), 0, 1400.0,
                    "waypoint");
}

TEST(Integration, DutyCycleTrace) {
  trace::DutyCycleConfig cfg;
  cfg.nodes = 10;
  cfg.horizon = 1200;
  cfg.area = 40.0;
  cfg.comm_range = 25.0;
  cfg.seed = 23;
  run_full_pipeline(trace::generate_duty_cycle(cfg), 0, 1100.0, "dutycycle");
}

TEST(Integration, SnapshotTrace) {
  trace::SnapshotConfig cfg;
  cfg.nodes = 9;
  cfg.slot = 50;
  cfg.horizon = 1000;
  cfg.p = 0.25;
  cfg.seed = 24;
  run_full_pipeline(trace::generate_snapshots(cfg), 0, 900.0, "snapshots");
}

TEST(Integration, TraceSurvivesSerializationRoundTrip) {
  trace::HaggleLikeConfig cfg;
  cfg.nodes = 8;
  cfg.horizon = 4000;
  cfg.activation_ramp_end = 800;
  cfg.seed = 25;
  const auto original = trace::generate_haggle_like(cfg);
  std::stringstream ss;
  trace::write_trace(ss, original);
  const auto restored = trace::read_trace(ss);

  const Workbench bench_a(original, paper_radio());
  const Workbench bench_b(restored, paper_radio());
  const auto a = bench_a.run(Algorithm::kEedcb, 0, 3500.0, 1);
  const auto b = bench_b.run(Algorithm::kEedcb, 0, 3500.0, 1);
  EXPECT_EQ(a.covered_all, b.covered_all);
  EXPECT_NEAR(a.normalized_energy, b.normalized_energy,
              1e-9 * a.normalized_energy);
}

TEST(Integration, NonzeroLatencyPipeline) {
  trace::HaggleLikeConfig cfg;
  cfg.nodes = 8;
  cfg.horizon = 5000;
  cfg.activation_ramp_end = 800;
  cfg.pair_probability = 0.6;
  cfg.seed = 26;
  const auto trace = trace::generate_haggle_like(cfg);
  Workbench::Options options;
  options.tau = 2.0;  // non-trivial edge traversal time
  const Workbench bench(trace, paper_radio(), options);
  const auto outcome = bench.run(Algorithm::kEedcb, 0, 4500.0, 1);
  if (outcome.covered_all) {
    const auto inst = bench.step_instance(0, 4500.0);
    const auto report = core::check_feasibility(inst, outcome.schedule);
    EXPECT_TRUE(report.feasible) << report.reason;
  }
  const auto fr = bench.run(Algorithm::kFrEedcb, 0, 4500.0, 1);
  if (fr.covered_all && fr.allocation_feasible) {
    const auto inst = bench.fading_instance(0, 4500.0);
    EXPECT_TRUE(core::check_feasibility(inst, fr.schedule).feasible);
  }
}

}  // namespace
}  // namespace tveg::sim
