// Regression guards for the figure *shapes* the paper reports — small,
// seeded versions of what the bench binaries measure at scale. If one of
// these fails after a change, a headline claim of the reproduction broke.
#include <gtest/gtest.h>

#include "sim/experiment.hpp"
#include "trace/generators.hpp"

namespace tveg::sim {
namespace {

trace::ContactTrace shape_trace(NodeId nodes, std::uint64_t seed) {
  trace::HaggleLikeConfig cfg;
  cfg.nodes = nodes;
  cfg.horizon = 8000;
  cfg.pair_probability = std::min(1.0, 9.0 / (nodes - 1));
  cfg.activation_ramp_end = 500;
  cfg.seed = seed;
  return trace::generate_haggle_like(cfg);
}

double mean_energy(const Workbench& bench, Algorithm a, Time deadline) {
  support::RunningStat stat;
  for (NodeId src : {0, 3, 6}) {
    const auto outcome = bench.run(a, src, deadline, src + 1);
    if (outcome.covered_all && outcome.allocation_feasible)
      stat.add(outcome.normalized_energy);
  }
  return stat.empty() ? -1 : stat.mean();
}

TEST(FigureShapes, Fig4EnergyFallsWithDeadline) {
  const Workbench bench(shape_trace(14, 2), paper_radio());
  const double tight = mean_energy(bench, Algorithm::kEedcb, 2000);
  const double loose = mean_energy(bench, Algorithm::kEedcb, 7000);
  ASSERT_GT(tight, 0);
  ASSERT_GT(loose, 0);
  EXPECT_LT(loose, tight);
}

TEST(FigureShapes, Fig4EnergyRisesWithN) {
  const Workbench small(shape_trace(10, 2), paper_radio());
  const Workbench large(shape_trace(20, 2), paper_radio());
  const double e_small = mean_energy(small, Algorithm::kEedcb, 5000);
  const double e_large = mean_energy(large, Algorithm::kEedcb, 5000);
  ASSERT_GT(e_small, 0);
  ASSERT_GT(e_large, 0);
  EXPECT_GT(e_large, e_small);
}

TEST(FigureShapes, Fig5StaticOrdering) {
  const Workbench bench(shape_trace(14, 3), paper_radio());
  const double eedcb = mean_energy(bench, Algorithm::kEedcb, 5000);
  const double greed = mean_energy(bench, Algorithm::kGreed, 5000);
  const double rand = mean_energy(bench, Algorithm::kRand, 5000);
  ASSERT_GT(eedcb, 0);
  EXPECT_LT(eedcb, greed);
  EXPECT_LT(greed, rand * 1.1);  // RAND can tie GREED on sparse traces
}

TEST(FigureShapes, Fig5FadingOrdering) {
  const Workbench bench(shape_trace(14, 3), paper_radio());
  const double fr_eedcb = mean_energy(bench, Algorithm::kFrEedcb, 5000);
  const double fr_greed = mean_energy(bench, Algorithm::kFrGreed, 5000);
  const double fr_rand = mean_energy(bench, Algorithm::kFrRand, 5000);
  ASSERT_GT(fr_eedcb, 0);
  EXPECT_LT(fr_eedcb, fr_greed);
  EXPECT_LT(fr_greed, fr_rand * 1.1);
}

TEST(FigureShapes, Fig6FrBeatsStaticOnDeliveryLosesOnEnergy) {
  const Workbench bench(shape_trace(14, 4), paper_radio());
  const auto eedcb = bench.run(Algorithm::kEedcb, 0, 5000, 1);
  const auto fr = bench.run(Algorithm::kFrEedcb, 0, 5000, 1);
  ASSERT_TRUE(eedcb.covered_all);
  ASSERT_TRUE(fr.covered_all && fr.allocation_feasible);
  EXPECT_GT(fr.normalized_energy, eedcb.normalized_energy * 10);
  const auto d_static = bench.delivery_under_fading(0, eedcb.schedule,
                                                    {.trials = 600, .seed = 2});
  const auto d_fr =
      bench.delivery_under_fading(0, fr.schedule, {.trials = 600, .seed = 2});
  EXPECT_GT(d_fr.mean_delivery_ratio, d_static.mean_delivery_ratio + 0.25);
  EXPECT_GT(d_fr.mean_delivery_ratio, 0.95);
}

TEST(FigureShapes, Fig7DegreeRampLowersEnergy) {
  // Ramped trace: an early window (low degree) must cost more than a late
  // window (plateau degree) for EEDCB.
  trace::HaggleLikeConfig cfg;
  cfg.nodes = 16;
  cfg.horizon = 17000;
  cfg.pair_probability = 0.6;
  cfg.activation_ramp_end = 8000;
  cfg.seed = 5;
  const auto trace = trace::generate_haggle_like(cfg);
  ASSERT_LT(trace.average_degree(5500), trace.average_degree(10000));

  const Workbench early(trace.window(5000, 7000), paper_radio());
  const Workbench late(trace.window(10000, 12000), paper_radio());
  const double e_early = mean_energy(early, Algorithm::kEedcb, 2000);
  const double e_late = mean_energy(late, Algorithm::kEedcb, 2000);
  ASSERT_GT(e_early, 0);
  ASSERT_GT(e_late, 0);
  EXPECT_GT(e_early, e_late);
}

TEST(FigureShapes, GreedUsesLooserDeadlines) {
  // The global-action GREED (DESIGN.md decision 3) must not be
  // deadline-oblivious: energy at T = 7000 stays at or below T = 2000.
  const Workbench bench(shape_trace(14, 6), paper_radio());
  const double tight = mean_energy(bench, Algorithm::kGreed, 2000);
  const double loose = mean_energy(bench, Algorithm::kGreed, 7000);
  ASSERT_GT(tight, 0);
  ASSERT_GT(loose, 0);
  EXPECT_LE(loose, tight * 1.05);
}

}  // namespace
}  // namespace tveg::sim
