// Cancellation-storm stress (run instrumented by the TSan tier, see
// scripts/ci.sh): many governed batches racing external cancels at seeded
// random points must never leak a pool task, touch freed state, or corrupt
// an uncancelled solve — the control request stays byte-identical to the
// serial oracle throughout the storm.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/eedcb.hpp"
#include "core/schedule_io.hpp"
#include "core/solve_many.hpp"
#include "fault/govern.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "trace/generators.hpp"

namespace tveg::fault {
namespace {

channel::RadioParams unit_radio() {
  channel::RadioParams r;
  r.noise_density = 1.0;
  r.decoding_threshold_db = 0.0;
  r.path_loss_exponent = 2.0;
  r.epsilon = 0.01;
  r.w_max = support::kInf;
  return r;
}

trace::ContactTrace storm_trace(std::uint64_t seed) {
  trace::SnapshotConfig cfg;
  cfg.nodes = 8;
  cfg.slot = 20;
  cfg.horizon = 200;
  cfg.p = 0.35;
  cfg.seed = seed;
  return trace::generate_snapshots(cfg);
}

std::string serialized(const core::Schedule& schedule) {
  std::ostringstream out;
  core::write_schedule(out, schedule);
  return out.str();
}

/// Rounds of governed batches; in each round a harness thread fires every
/// request's CancelSource after a seeded random number of observed polls
/// (including 0 — cancel-before-start — and "never" — the control case).
TEST(CancelStorm, RacingCancelsNeverCorruptOrWedge) {
  const trace::ContactTrace t = storm_trace(9);
  const core::Tveg tveg(t, unit_radio(),
                        {.model = channel::ChannelModel::kStep});
  const DiscreteTimeSet dts = tveg.build_dts();
  support::ThreadPool pool(4);

  // Serial oracle for the control request.
  const core::TmedbInstance control_inst{&tveg, 0, 200.0};
  const auto oracle = core::run_eedcb(control_inst, dts, {});
  const std::string oracle_text = serialized(oracle.schedule);

  support::Rng rng(20260808);
  for (int round = 0; round < 8; ++round) {
    std::vector<core::SolveRequest> requests;
    for (NodeId s = 0; s < 6; ++s)
      requests.push_back({.source = s, .deadline = 200.0});
    // Request 0 is the control: its source is never fired.
    std::vector<support::CancelSource> cancels(requests.size());
    std::vector<std::uint64_t> fire_at(requests.size());
    for (std::size_t r = 1; r < requests.size(); ++r)
      fire_at[r] = rng.uniform_int(2000);

    GovernOptions options;
    options.shed_policy = ShedPolicy::kError;
    options.eedcb.pool = &pool;

    std::atomic<bool> done{false};
    std::vector<std::thread> firers;
    for (std::size_t r = 1; r < requests.size(); ++r) {
      firers.emplace_back([&, r] {
        while (cancels[r].polls() < fire_at[r] && !done.load()) {
          std::this_thread::yield();
        }
        cancels[r].request_cancel();
      });
    }

    const auto governed =
        solve_many_governed(tveg, dts, requests, options, cancels);
    done.store(true);
    for (auto& thread : firers) thread.join();

    ASSERT_EQ(governed.size(), requests.size()) << "round " << round;
    // The control request survived the storm byte-identically.
    ASSERT_TRUE(governed[0].outcome.ok()) << "round " << round;
    EXPECT_EQ(serialized(governed[0].outcome.value().schedule), oracle_text)
        << "round " << round;
    // Every other outcome is a clean schedule or a clean cancellation —
    // nothing else can come out of a cancel race.
    for (std::size_t r = 1; r < requests.size(); ++r) {
      const auto& g = governed[r];
      if (g.outcome.ok()) continue;
      EXPECT_EQ(g.outcome.error().code, support::ErrorCode::kCancelled)
          << "round " << round << " request " << r << ": "
          << g.outcome.error().to_string();
    }
    // No leaked pool task: the pool drains to fully reusable every round.
    std::atomic<std::size_t> ran{0};
    pool.parallel_for(0, 500, [&](std::size_t) { ++ran; });
    ASSERT_EQ(ran.load(), 500u) << "round " << round;
  }
}

/// Concurrent governed batches on separate pools, cancelled from one shared
/// storm thread — exercises the Watchdog registry and CancelSource sharing
/// across threads under TSan.
TEST(CancelStorm, ConcurrentBatchesWithWatchdogStayIsolated) {
  const trace::ContactTrace t = storm_trace(13);
  const core::Tveg tveg(t, unit_radio(),
                        {.model = channel::ChannelModel::kStep});
  const DiscreteTimeSet dts = tveg.build_dts();

  constexpr int kBatches = 3;
  std::vector<std::vector<GovernedSolve>> results(kBatches);
  std::vector<std::thread> runners;
  for (int b = 0; b < kBatches; ++b) {
    runners.emplace_back([&, b] {
      std::vector<core::SolveRequest> requests;
      for (NodeId s = 0; s < 4; ++s)
        requests.push_back({.source = s, .deadline = 200.0});
      GovernOptions options;
      options.stall_ms = 60000;  // armed, never firing
      results[static_cast<std::size_t>(b)] =
          solve_many_governed(tveg, dts, requests, options);
    });
  }
  for (auto& thread : runners) thread.join();

  const std::string expected =
      serialized(core::run_eedcb(core::TmedbInstance{&tveg, 0, 200.0}, dts, {})
                     .schedule);
  for (int b = 0; b < kBatches; ++b) {
    ASSERT_EQ(results[static_cast<std::size_t>(b)].size(), 4u);
    ASSERT_TRUE(results[static_cast<std::size_t>(b)][0].outcome.ok());
    EXPECT_EQ(serialized(results[static_cast<std::size_t>(b)][0]
                             .outcome.value()
                             .schedule),
              expected);
  }
}

}  // namespace
}  // namespace tveg::fault
