#include "sim/experiment.hpp"

#include <gtest/gtest.h>

#include "trace/generators.hpp"

namespace tveg::sim {
namespace {

trace::ContactTrace bench_trace(NodeId nodes = 12, std::uint64_t seed = 3) {
  trace::HaggleLikeConfig cfg;
  cfg.nodes = nodes;
  cfg.horizon = 6000;
  cfg.activation_ramp_end = 1000;
  cfg.pair_probability = 0.5;
  cfg.seed = seed;
  return trace::generate_haggle_like(cfg);
}

TEST(Experiment, PaperRadioConstants) {
  const auto radio = paper_radio();
  EXPECT_DOUBLE_EQ(radio.noise_density, 4.32e-21);
  EXPECT_DOUBLE_EQ(radio.decoding_threshold_db, 25.9);
  EXPECT_DOUBLE_EQ(radio.path_loss_exponent, 2.0);
  EXPECT_DOUBLE_EQ(radio.epsilon, 0.01);
  EXPECT_NO_THROW(radio.validate());
}

TEST(Experiment, AlgorithmNamesAndClassification) {
  EXPECT_STREQ(algorithm_name(Algorithm::kEedcb), "EEDCB");
  EXPECT_STREQ(algorithm_name(Algorithm::kFrRand), "FR-RAND");
  EXPECT_FALSE(fading_resistant(Algorithm::kGreed));
  EXPECT_TRUE(fading_resistant(Algorithm::kFrEedcb));
  EXPECT_EQ(std::size(kAllAlgorithms), 6u);
}

TEST(Experiment, WorkbenchBuildsBothChannelViews) {
  const Workbench bench(bench_trace(), paper_radio());
  EXPECT_EQ(bench.step().model(), channel::ChannelModel::kStep);
  EXPECT_EQ(bench.fading().model(), channel::ChannelModel::kRayleigh);
  EXPECT_EQ(bench.step().node_count(), bench.fading().node_count());
  EXPECT_GT(bench.dts().total_points(), 0u);
}

TEST(Experiment, AllSixAlgorithmsProduceCoveringSchedules) {
  const Workbench bench(bench_trace(), paper_radio());
  for (Algorithm a : kAllAlgorithms) {
    const auto outcome = bench.run(a, 0, 5000.0, 7);
    EXPECT_TRUE(outcome.covered_all) << algorithm_name(a);
    EXPECT_TRUE(outcome.allocation_feasible) << algorithm_name(a);
    EXPECT_GT(outcome.normalized_energy, 0.0) << algorithm_name(a);
    EXPECT_FALSE(outcome.schedule.empty()) << algorithm_name(a);
  }
}

TEST(Experiment, StaticSchedulesAreFeasibleOnStepView) {
  const Workbench bench(bench_trace(), paper_radio());
  for (Algorithm a : {Algorithm::kEedcb, Algorithm::kGreed, Algorithm::kRand}) {
    const auto outcome = bench.run(a, 0, 5000.0, 7);
    const auto inst = bench.step_instance(0, 5000.0);
    EXPECT_TRUE(core::check_feasibility(inst, outcome.schedule).feasible)
        << algorithm_name(a);
  }
}

TEST(Experiment, FrSchedulesAreFeasibleOnFadingView) {
  const Workbench bench(bench_trace(), paper_radio());
  for (Algorithm a :
       {Algorithm::kFrEedcb, Algorithm::kFrGreed, Algorithm::kFrRand}) {
    const auto outcome = bench.run(a, 0, 5000.0, 7);
    const auto inst = bench.fading_instance(0, 5000.0);
    EXPECT_TRUE(core::check_feasibility(inst, outcome.schedule).feasible)
        << algorithm_name(a);
  }
}

TEST(Experiment, FrCostsExceedStaticCosts) {
  // Fig. 6(a)'s gross ordering: every FR variant pays more than every
  // static variant (ε-costs are ~100× step costs at ε = 0.01).
  const Workbench bench(bench_trace(), paper_radio());
  double max_static = 0, min_fr = 1e300;
  for (Algorithm a : kAllAlgorithms) {
    const auto outcome = bench.run(a, 0, 5000.0, 7);
    if (fading_resistant(a)) {
      min_fr = std::min(min_fr, outcome.normalized_energy);
    } else {
      max_static = std::max(max_static, outcome.normalized_energy);
    }
  }
  EXPECT_GT(min_fr, max_static);
}

TEST(Experiment, FrDeliveryBeatsStaticUnderFading) {
  // Fig. 6(b)'s headline: FR-* deliver (nearly) fully under fading while
  // static-designed schedules lose a large fraction.
  const Workbench bench(bench_trace(), paper_radio());
  const auto eedcb = bench.run(Algorithm::kEedcb, 0, 5000.0, 7);
  const auto fr = bench.run(Algorithm::kFrEedcb, 0, 5000.0, 7);
  const auto d_static = bench.delivery_under_fading(
      0, eedcb.schedule, {.trials = 1500, .seed = 3});
  const auto d_fr =
      bench.delivery_under_fading(0, fr.schedule, {.trials = 1500, .seed = 3});
  EXPECT_GT(d_fr.mean_delivery_ratio, 0.9);
  EXPECT_LT(d_static.mean_delivery_ratio, 0.7);
}

TEST(Experiment, EedcbCheaperThanGreedOnAverage) {
  // Fig. 5(a)'s ordering EEDCB < GREED, averaged over sources/seeds.
  double eedcb_total = 0, greed_total = 0;
  int runs = 0;
  for (std::uint64_t seed : {3u, 4u, 5u, 6u}) {
    const Workbench bench(bench_trace(12, seed), paper_radio());
    for (NodeId src : {0, 6}) {
      const auto e = bench.run(Algorithm::kEedcb, src, 5500.0, seed);
      const auto g = bench.run(Algorithm::kGreed, src, 5500.0, seed);
      if (!e.covered_all || !g.covered_all) continue;
      eedcb_total += e.normalized_energy;
      greed_total += g.normalized_energy;
      ++runs;
    }
  }
  ASSERT_GT(runs, 3);
  EXPECT_LT(eedcb_total, greed_total);
}

TEST(Experiment, RandSeedChangesRandSchedule) {
  // A dense trace guarantees steps with several eligible relays; some seed
  // pair must then diverge.
  trace::HaggleLikeConfig cfg;
  cfg.nodes = 16;
  cfg.horizon = 6000;
  cfg.activation_ramp_end = 500;
  cfg.pair_probability = 0.8;
  cfg.seed = 12;
  const Workbench bench(trace::generate_haggle_like(cfg), paper_radio());
  const auto reference = bench.run(Algorithm::kRand, 0, 5000.0, 1);
  bool diverged = false;
  for (std::uint64_t seed = 2; seed <= 6 && !diverged; ++seed) {
    const auto other = bench.run(Algorithm::kRand, 0, 5000.0, seed);
    diverged = other.schedule.transmissions() !=
               reference.schedule.transmissions();
  }
  EXPECT_TRUE(diverged);
}

}  // namespace
}  // namespace tveg::sim
