#include "sim/monte_carlo.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/math.hpp"

namespace tveg::sim {
namespace {

channel::RadioParams test_radio() {
  channel::RadioParams r;
  r.epsilon = 0.01;
  r.w_max = support::kInf;
  return r;
}

core::Tveg line_tveg(channel::ChannelModel model) {
  trace::ContactTrace t(3, 100.0);
  t.add({0, 1, 0.0, 100.0, 1.0});
  t.add({1, 2, 0.0, 100.0, 1.0});
  return core::Tveg(t, test_radio(), {.model = model});
}

TEST(MonteCarlo, DeterministicStepScheduleDeliversFully) {
  const auto tveg = line_tveg(channel::ChannelModel::kStep);
  core::Schedule s;
  const Cost w = tveg.edge_weight(0, 1, 0.0);
  s.add(0, 10.0, w);
  s.add(1, 20.0, w);
  const auto stats = simulate_delivery(tveg, 0, s, {.trials = 200});
  EXPECT_DOUBLE_EQ(stats.mean_delivery_ratio, 1.0);
  EXPECT_DOUBLE_EQ(stats.full_delivery_fraction, 1.0);
}

TEST(MonteCarlo, SingleRayleighLinkMatchesAnalyticProbability) {
  const auto tveg = line_tveg(channel::ChannelModel::kRayleigh);
  core::Schedule s;
  const double beta = tveg.radio().rayleigh_beta(1.0);
  s.add(0, 10.0, beta);  // success probability e^{-1}
  const auto stats =
      simulate_delivery(tveg, 0, s, {.trials = 20000, .seed = 5});
  const double success = std::exp(-1.0);
  // Expected ratio = (1 + success + 0) / 3 (source + maybe node 1).
  EXPECT_NEAR(stats.mean_delivery_ratio, (1.0 + success) / 3.0, 0.01);
  EXPECT_DOUBLE_EQ(stats.full_delivery_fraction, 0.0);  // node 2 never hears
}

TEST(MonteCarlo, RelayOnlyForwardsWhatItReceived) {
  const auto tveg = line_tveg(channel::ChannelModel::kRayleigh);
  core::Schedule s;
  const double beta = tveg.radio().rayleigh_beta(1.0);
  s.add(0, 10.0, beta);  // success e^{-1}
  s.add(1, 20.0, beta);  // fires only if 1 received
  const auto stats =
      simulate_delivery(tveg, 0, s, {.trials = 20000, .seed = 7});
  const double p1 = std::exp(-1.0);
  const double p2 = p1 * p1;  // needs both hops
  EXPECT_NEAR(stats.mean_delivery_ratio, (1.0 + p1 + p2) / 3.0, 0.01);
  EXPECT_NEAR(stats.full_delivery_fraction, p2, 0.01);
}

TEST(MonteCarlo, SameTimeCascadeWorksAtZeroTau) {
  const auto tveg = line_tveg(channel::ChannelModel::kStep);
  core::Schedule s;
  const Cost w = tveg.edge_weight(0, 1, 0.0);
  s.add(0, 10.0, w);
  s.add(1, 10.0, w);  // non-stop journey
  const auto stats = simulate_delivery(tveg, 0, s, {.trials = 100});
  EXPECT_DOUBLE_EQ(stats.mean_delivery_ratio, 1.0);
}

TEST(MonteCarlo, ReverseSortedSameTimeCascadeStillWorks) {
  // Relay with the higher node id fires first in sorted order; the fixpoint
  // must still resolve the chain 0 → 1 → 2.
  trace::ContactTrace t(3, 100.0);
  t.add({1, 2, 0.0, 100.0, 1.0});
  t.add({0, 2, 0.0, 100.0, 1.0});  // 2 is informed by 0 directly
  const core::Tveg tveg(t, test_radio(),
                        {.model = channel::ChannelModel::kStep});
  core::Schedule s;
  const Cost w = tveg.edge_weight(0, 2, 0.0);
  s.add(2, 10.0, w);  // sorted after 0's tx (same time, higher relay id)...
  s.add(0, 10.0, w);
  const auto stats = simulate_delivery(tveg, 0, s, {.trials = 50});
  EXPECT_DOUBLE_EQ(stats.mean_delivery_ratio, 1.0);
}

TEST(MonteCarlo, HigherPowerImprovesDelivery) {
  const auto tveg = line_tveg(channel::ChannelModel::kRayleigh);
  const double beta = tveg.radio().rayleigh_beta(1.0);
  core::Schedule low, high;
  low.add(0, 10.0, beta);
  high.add(0, 10.0, 100 * beta);
  const auto stats_low =
      simulate_delivery(tveg, 0, low, {.trials = 5000, .seed = 3});
  const auto stats_high =
      simulate_delivery(tveg, 0, high, {.trials = 5000, .seed = 3});
  EXPECT_GT(stats_high.mean_delivery_ratio, stats_low.mean_delivery_ratio);
}

TEST(MonteCarlo, DeterministicForSeedSerialVsParallel) {
  const auto tveg = line_tveg(channel::ChannelModel::kRayleigh);
  core::Schedule s;
  s.add(0, 10.0, tveg.radio().rayleigh_beta(1.0));
  const auto serial = simulate_delivery(
      tveg, 0, s, {.trials = 500, .seed = 11, .parallel = false});
  const auto parallel = simulate_delivery(
      tveg, 0, s, {.trials = 500, .seed = 11, .parallel = true});
  EXPECT_DOUBLE_EQ(serial.mean_delivery_ratio, parallel.mean_delivery_ratio);
}

TEST(MonteCarlo, TrialStreamsAreStatisticallyIndependent) {
  // The old per-trial derivation `seed ^ (kGolden * (trial + 1))` was
  // XOR-linear: for B = A ^ kGolden ^ 2*kGolden, run B's trial stream was
  // run A's shifted by one, so two "independent" experiments replayed the
  // same channel draws and their delivery estimates agreed to O(1/trials).
  // With stream_seed(), the runs are genuinely independent: their estimates
  // must differ on the O(1/sqrt(trials)) scale, far above the replay bound.
  const auto tveg = line_tveg(channel::ChannelModel::kRayleigh);
  core::Schedule s;
  s.add(0, 10.0, tveg.radio().rayleigh_beta(1.0));  // success e^{-1}

  constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
  const std::size_t trials = 20000;
  const std::uint64_t seed_a = 42;
  const std::uint64_t seed_b = seed_a ^ (kGolden * 1) ^ (kGolden * 2);
  const auto run_a = simulate_delivery(tveg, 0, s, {.trials = trials,
                                                    .seed = seed_a});
  const auto run_b = simulate_delivery(tveg, 0, s, {.trials = trials,
                                                    .seed = seed_b});
  // Replay signature: means would agree within shift/trials (~1.7e-5 here).
  const double replay_bound = 3.0 / static_cast<double>(trials);
  EXPECT_GT(std::abs(run_a.mean_delivery_ratio - run_b.mean_delivery_ratio),
            replay_bound)
      << "delivery estimates agree to replay precision — per-trial streams "
         "look like shifted copies, not independent draws";

  // Both estimates still agree with the analytic value (consistency).
  const double analytic = (1.0 + std::exp(-1.0)) / 3.0;
  EXPECT_NEAR(run_a.mean_delivery_ratio, analytic, 0.01);
  EXPECT_NEAR(run_b.mean_delivery_ratio, analytic, 0.01);

  // And the per-trial spread matches the iid Bernoulli analytic stddev:
  // ratio is (1 + X)/3 with X ~ Bernoulli(e^{-1}).
  const double p = std::exp(-1.0);
  EXPECT_NEAR(run_a.stddev_delivery_ratio, std::sqrt(p * (1 - p)) / 3.0,
              0.01);
}

TEST(MonteCarlo, InputValidation) {
  const auto tveg = line_tveg(channel::ChannelModel::kStep);
  core::Schedule s;
  EXPECT_THROW(simulate_delivery(tveg, 0, s, {.trials = 0}),
               std::invalid_argument);
  EXPECT_THROW(simulate_delivery(tveg, 9, s, {.trials = 1}),
               std::invalid_argument);
}

TEST(MonteCarlo, EmptyScheduleDeliversSourceOnly) {
  const auto tveg = line_tveg(channel::ChannelModel::kStep);
  const auto stats =
      simulate_delivery(tveg, 0, core::Schedule{}, {.trials = 10});
  EXPECT_NEAR(stats.mean_delivery_ratio, 1.0 / 3.0, 1e-12);
}

TEST(MonteCarloExtensions, PresenceReliabilityMatchesAnalytic) {
  // Single step-channel hop on an edge up with probability q: delivery of
  // node 1 is exactly q.
  trace::ContactTrace t(2, 100.0);
  t.add({0, 1, 0.0, 100.0, 1.0});
  const core::Tveg tveg(t, test_radio(),
                        {.model = channel::ChannelModel::kStep});
  core::Schedule s;
  s.add(0, 10.0, tveg.edge_weight(0, 1, 0.0));
  McOptions options;
  options.trials = 20000;
  options.seed = 3;
  options.presence_reliability = 0.7;
  const auto stats = simulate_delivery(tveg, 0, s, options);
  EXPECT_NEAR(stats.mean_delivery_ratio, (1.0 + 0.7) / 2.0, 0.01);
}

TEST(MonteCarloExtensions, FullReliabilityEqualsPlainModel) {
  const auto tveg = line_tveg(channel::ChannelModel::kRayleigh);
  core::Schedule s;
  s.add(0, 10.0, tveg.radio().rayleigh_beta(1.0));
  McOptions plain{.trials = 500, .seed = 11, .parallel = false};
  McOptions with_presence = plain;
  with_presence.presence_reliability = 1.0;
  EXPECT_DOUBLE_EQ(
      simulate_delivery(tveg, 0, s, plain).mean_delivery_ratio,
      simulate_delivery(tveg, 0, s, with_presence).mean_delivery_ratio);
}

TEST(MonteCarloExtensions, InterferenceCollisionBlocksReceiver) {
  // 0 informs 1 at t = 5 over a private early contact; at t = 10 both 0 and
  // 1 transmit and collide at receiver 2, which decodes neither.
  trace::ContactTrace t2(3, 100.0);
  t2.add({0, 1, 0.0, 8.0, 1.0});    // private early contact
  t2.add({0, 2, 9.0, 100.0, 1.0});  // both in range of 2 from t = 9
  t2.add({1, 2, 9.0, 100.0, 1.0});
  const core::Tveg tveg2(t2, test_radio(),
                         {.model = channel::ChannelModel::kStep});
  const Cost w2 = tveg2.edge_weight(0, 1, 0.0);
  core::Schedule concurrent;
  concurrent.add(0, 5.0, w2);
  concurrent.add(0, 10.0, tveg2.edge_weight(0, 2, 10.0));
  concurrent.add(1, 10.0, tveg2.edge_weight(1, 2, 10.0));

  McOptions options{.trials = 200, .seed = 5};
  options.model_interference = true;
  const auto stats = simulate_delivery(tveg2, 0, concurrent, options);
  // 0 and 1 informed; 2 never (always a collision at t = 10).
  EXPECT_NEAR(stats.mean_delivery_ratio, 2.0 / 3.0, 1e-12);

  // Staggering the two transmissions resolves the collision.
  core::Schedule staggered;
  staggered.add(0, 5.0, w2);
  staggered.add(0, 10.0, tveg2.edge_weight(0, 2, 10.0));
  staggered.add(1, 20.0, tveg2.edge_weight(1, 2, 20.0));
  const auto ok = simulate_delivery(tveg2, 0, staggered, options);
  EXPECT_DOUBLE_EQ(ok.mean_delivery_ratio, 1.0);
}

TEST(MonteCarloExtensions, InterferenceDisablesSameTimeCascade) {
  const auto tveg = line_tveg(channel::ChannelModel::kStep);
  const Cost w = tveg.edge_weight(0, 1, 0.0);
  core::Schedule s;
  s.add(0, 10.0, w);
  s.add(1, 10.0, w);  // legal non-stop journey in the plain model...
  McOptions options{.trials = 100, .seed = 2};
  const auto plain = simulate_delivery(tveg, 0, s, options);
  EXPECT_DOUBLE_EQ(plain.mean_delivery_ratio, 1.0);
  options.model_interference = true;  // ...but not when rx/tx can't overlap
  const auto interfered = simulate_delivery(tveg, 0, s, options);
  EXPECT_NEAR(interfered.mean_delivery_ratio, 2.0 / 3.0, 1e-12);
}

TEST(MonteCarloExtensions, ReliabilityValidation) {
  const auto tveg = line_tveg(channel::ChannelModel::kStep);
  McOptions options{.trials = 1};
  options.presence_reliability = 0.0;
  EXPECT_THROW(simulate_delivery(tveg, 0, core::Schedule{}, options),
               std::invalid_argument);
  options.presence_reliability = 1.5;
  EXPECT_THROW(simulate_delivery(tveg, 0, core::Schedule{}, options),
               std::invalid_argument);
}

}  // namespace
}  // namespace tveg::sim
