// Concurrency stress for the solve/simulate paths that share the global
// ThreadPool: Monte-Carlo delivery simulation and the robust_solve ladder
// driven from several caller threads at once. Written for the TSan tier
// (scripts/ci.sh tsan stage); the assertions double as determinism checks —
// contention must not change a single result bit.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/solve_many.hpp"
#include "fault/degrade.hpp"
#include "graph/workspace_pool.hpp"
#include "sim/monte_carlo.hpp"
#include "support/thread_pool.hpp"
#include "trace/generators.hpp"

namespace tveg::sim {
namespace {

channel::RadioParams unit_radio() {
  channel::RadioParams r;
  r.noise_density = 1.0;
  r.decoding_threshold_db = 0.0;
  r.path_loss_exponent = 2.0;
  r.epsilon = 0.01;
  r.w_max = support::kInf;
  return r;
}

trace::ContactTrace sample_trace(std::uint64_t seed = 1) {
  trace::SnapshotConfig cfg;
  cfg.nodes = 8;
  cfg.slot = 20;
  cfg.horizon = 200;
  cfg.p = 0.35;
  cfg.seed = seed;
  return trace::generate_snapshots(cfg);
}

TEST(ParallelStress, ConcurrentMonteCarloCallersStayDeterministic) {
  // Several threads run the pool-parallel Monte-Carlo executor at the same
  // seed while sharing ThreadPool::global(); every one of them must
  // reproduce the serial baseline exactly.
  const trace::ContactTrace t = sample_trace();
  const core::Tveg tveg(t, unit_radio(),
                        {.model = channel::ChannelModel::kRayleigh});
  core::Schedule schedule;
  schedule.add(0, 20.0, 2.0);
  schedule.add(1, 40.0, 2.0);
  schedule.add(2, 60.0, 2.0);

  McOptions serial;
  serial.trials = 400;
  serial.seed = 17;
  serial.parallel = false;
  const DeliveryStats baseline = simulate_delivery(tveg, 0, schedule, serial);

  constexpr std::size_t kCallers = 3;
  std::vector<DeliveryStats> results(kCallers);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      McOptions parallel = serial;
      parallel.parallel = true;
      results[c] = simulate_delivery(tveg, 0, schedule, parallel);
    });
  }
  for (auto& th : callers) th.join();
  for (std::size_t c = 0; c < kCallers; ++c) {
    EXPECT_DOUBLE_EQ(results[c].mean_delivery_ratio,
                     baseline.mean_delivery_ratio);
    EXPECT_DOUBLE_EQ(results[c].stddev_delivery_ratio,
                     baseline.stddev_delivery_ratio);
    EXPECT_DOUBLE_EQ(results[c].full_delivery_fraction,
                     baseline.full_delivery_fraction);
    EXPECT_EQ(results[c].trials, baseline.trials);
  }
}

TEST(ParallelStress, ConcurrentRobustSolvesAgree) {
  // The fallback ladder from several threads on the same instance: shared
  // state is only the metrics registry and the pool, so results must be
  // identical and feasible under contention.
  const trace::ContactTrace t = sample_trace(3);
  const core::Tveg tveg(t, unit_radio(),
                        {.model = channel::ChannelModel::kStep});
  const core::TmedbInstance inst{&tveg, 0, 200.0};
  const DiscreteTimeSet dts = tveg.build_dts();

  constexpr std::size_t kCallers = 3;
  std::vector<fault::RobustSolveResult> results(kCallers);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] { results[c] = fault::robust_solve(inst, dts); });
  }
  for (auto& th : callers) th.join();
  for (std::size_t c = 0; c < kCallers; ++c) {
    EXPECT_EQ(results[c].rung, fault::SolverRung::kEedcb);
    EXPECT_TRUE(results[c].result.covered_all);
    EXPECT_TRUE(core::check_feasibility(inst, results[c].result.schedule)
                    .feasible);
    EXPECT_DOUBLE_EQ(results[c].result.schedule.total_cost(),
                     results[0].result.schedule.total_cost());
  }
}

TEST(ParallelStress, ConcurrentSolveManyBatchesShareWorkspacePool) {
  // Several caller threads run pooled solve_many batches at once. All their
  // Dijkstra scratch flows through graph::dijkstra_workspaces() — the
  // shared free list is the contended state this test hammers under TSan —
  // and every batch must still reproduce the serial baseline bit-for-bit.
  const trace::ContactTrace t = sample_trace(7);
  const core::Tveg tveg(t, unit_radio(),
                        {.model = channel::ChannelModel::kStep});
  std::vector<core::SolveRequest> requests;
  for (NodeId s = 0; s < 4; ++s)
    requests.push_back({.source = s, .deadline = 200.0});
  requests.push_back({.source = 0, .deadline = 160.0});

  const std::vector<core::SchedulerResult> baseline =
      core::solve_many(tveg, requests, {});

  constexpr std::size_t kCallers = 3;
  std::vector<std::vector<core::SchedulerResult>> results(kCallers);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      core::EedcbOptions pooled;
      pooled.pool = &support::ThreadPool::global();
      results[c] = core::solve_many(tveg, requests, pooled);
    });
  }
  for (auto& th : callers) th.join();
  // Steady state across the batches: the pool only ever grows, and every
  // workspace handed out was returned.
  auto& pool = graph::dijkstra_workspaces();
  EXPECT_EQ(pool.idle(), pool.created());
  for (std::size_t c = 0; c < kCallers; ++c) {
    ASSERT_EQ(results[c].size(), baseline.size());
    for (std::size_t r = 0; r < baseline.size(); ++r) {
      EXPECT_EQ(results[c][r].covered_all, baseline[r].covered_all);
      EXPECT_DOUBLE_EQ(results[c][r].schedule.total_cost(),
                       baseline[r].schedule.total_cost());
      ASSERT_EQ(results[c][r].schedule.transmissions().size(),
                baseline[r].schedule.transmissions().size());
      for (std::size_t i = 0; i < baseline[r].schedule.transmissions().size();
           ++i) {
        const auto& got = results[c][r].schedule.transmissions()[i];
        const auto& want = baseline[r].schedule.transmissions()[i];
        EXPECT_EQ(got.relay, want.relay);
        EXPECT_DOUBLE_EQ(got.time, want.time);
        EXPECT_DOUBLE_EQ(got.cost, want.cost);
      }
    }
  }
}

}  // namespace
}  // namespace tveg::sim
