// Fuzz target: the shared CLI option parser (src/cli/args.hpp).
//
// The input bytes are split on newlines into an argv (capped so a
// pathological input cannot allocate without bound) and parsed against the
// tveg-certify option spec. Contract under fuzz: the parser either
// succeeds or throws cli::UsageError — nothing else — and on success the
// accessors (including the numeric conversions, which must reject
// non-finite and partially-numeric values with UsageError, not UB) are
// safe on arbitrary stored values.
#include <cstdint>
#include <string>
#include <vector>

#include "cli/args.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  static const tveg::cli::Args::Spec spec{
      {"trace", "schedule", "deadline", "eps", "source", "tau", "budget",
       "targets", "nodes", "horizon", "model", "nakagami-m", "rician-k",
       "noise", "gamma-db", "alpha", "w-min", "w-max", "dts-tol", "json"},
      {"no-dts-check", "quiet", "help"}};

  std::vector<std::string> tokens;
  std::string current;
  for (std::size_t i = 0; i < size && tokens.size() < 64; ++i) {
    const char c = static_cast<char>(data[i]);
    if (c == '\n') {
      tokens.push_back(current);
      current.clear();
    } else if (c != '\0') {
      current.push_back(c);
    }
  }
  if (!current.empty() && tokens.size() < 64) tokens.push_back(current);

  std::vector<const char*> argv = {"fuzz"};
  for (const std::string& t : tokens) argv.push_back(t.c_str());

  try {
    const tveg::cli::Args args(static_cast<int>(argv.size()), argv.data(),
                               spec);
    for (const char* key : {"deadline", "eps", "budget", "noise"}) {
      try {
        (void)args.get_num(key, 0.0);
      } catch (const tveg::cli::UsageError&) {
      }
    }
    (void)args.get("trace", "");
    (void)args.has("quiet");
    (void)args.positional();
  } catch (const tveg::cli::UsageError&) {
  }
  return 0;
}
