// Replay driver for the fuzz targets.
//
// libFuzzer needs clang; this container (and any plain gcc CI runner)
// builds each fuzz target against this driver instead, which mimics
// libFuzzer's "run each input once" mode: every command-line argument is a
// corpus file — or a directory of corpus files — fed byte-for-byte to
// LLVMFuzzerTestOneInput. The fuzz.corpus_replay ctests run the pinned
// corpus through the plain and sanitizer builds on every suite run, so a
// reproducer minimized under libFuzzer keeps guarding the code after the
// fuzzing session ends.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

int run_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "replay: cannot open %s\n", path.c_str());
    return 1;
  }
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                         bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int executed = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg(argv[i]);
    std::error_code ec;
    if (std::filesystem::is_directory(arg, ec)) {
      std::vector<std::filesystem::path> files;
      for (const auto& entry : std::filesystem::directory_iterator(arg))
        if (entry.is_regular_file()) files.push_back(entry.path());
      std::sort(files.begin(), files.end());
      for (const auto& f : files) {
        if (run_file(f) != 0) return 1;
        ++executed;
      }
    } else {
      if (run_file(arg) != 0) return 1;
      ++executed;
    }
  }
  if (executed == 0) {
    std::fprintf(stderr, "usage: %s <corpus file or dir>...\n", argv[0]);
    return 2;
  }
  std::printf("replay: executed %d inputs cleanly\n", executed);
  return 0;
}
