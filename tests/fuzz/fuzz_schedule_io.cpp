// Fuzz target: the two schedule parsers, differentially.
//
// core::read_schedule (the solver-side reader behind `tmedb evaluate`) and
// certify::parse_schedule (the certifier's independent reader) consume the
// same on-disk format. Contract under fuzz:
//  * neither parser crashes or trips a sanitizer on any input — rejection
//    is always a thrown std::invalid_argument;
//  * the core reader is strictly the pickier of the two (it additionally
//    rejects value-level problems like negative relays, which the certifier
//    accepts at parse time and rejects during verification), so any input
//    the core reader accepts the certifier must accept too, with the same
//    transmission count.
// A divergence aborts, which libFuzzer / the replay driver report as a
// finding.
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/schedule_io.hpp"
#include "tools/certify/certify.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);

  std::optional<std::size_t> core_count;
  try {
    std::istringstream in(text);
    core_count = tveg::core::read_schedule(in).size();
  } catch (const std::invalid_argument&) {
  }

  std::optional<std::size_t> certify_count;
  try {
    std::istringstream in(text);
    certify_count = tveg::certify::parse_schedule(in).size();
  } catch (const std::invalid_argument&) {
  }

  if (core_count && (!certify_count || *certify_count != *core_count))
    std::abort();  // certifier rejected what the stricter core reader took
  return 0;
}
