// Fuzz target: the contact-trace text parser (trace/io.hpp).
//
// Exercises the robust Result-returning entry point with arbitrary bytes.
// Contract under fuzz: parse_trace never crashes, never hits UB, and on
// success returns a trace whose accessors are safe to call; on failure the
// structured error renders without throwing.
#include <cstdint>
#include <sstream>
#include <string>

#include "trace/io.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(data), size));
  const auto result = tveg::trace::parse_trace(in, {});
  if (result.ok()) {
    const tveg::trace::ContactTrace& t = result.value();
    (void)t.pair_count();
    if (t.horizon() > 0.0) (void)t.average_degree(t.horizon() / 2.0);
  } else {
    (void)result.error().to_string();
  }
  return 0;
}
