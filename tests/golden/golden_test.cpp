// Golden-schedule fixtures: canonical solves pinned byte-for-byte.
//
// Each scenario runs the full cached + pooled pipeline on a deterministic
// generated trace and compares the serialized schedule (precision-17 text,
// core/schedule_io) against a committed fixture under
// tests/golden/fixtures/. Any drift — an algorithm change, a float
// reordering, a platform difference — fails loudly with a diff hint.
//
// Regenerate after an INTENTIONAL schedule change with
//   scripts/regen_golden.sh
// (sets TVEG_REGEN_GOLDEN=1, which makes this test rewrite the fixtures)
// and commit the new fixtures together with the change that moved them.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/ed_weight_cache.hpp"
#include "core/eedcb.hpp"
#include "core/fr.hpp"
#include "core/schedule_io.hpp"
#include "core/tveg.hpp"
#include "support/math.hpp"
#include "support/thread_pool.hpp"
#include "tools/certify/certify.hpp"
#include "trace/generators.hpp"

#ifndef TVEG_GOLDEN_DIR
#error "TVEG_GOLDEN_DIR must point at tests/golden/fixtures"
#endif

namespace tveg::core {
namespace {

channel::RadioParams unit_radio() {
  channel::RadioParams r;
  r.noise_density = 1.0;
  r.decoding_threshold_db = 0.0;
  r.path_loss_exponent = 2.0;
  r.epsilon = 0.01;
  r.w_max = support::kInf;
  return r;
}

bool regen() { return std::getenv("TVEG_REGEN_GOLDEN") != nullptr; }

support::ThreadPool& pool() {
  static support::ThreadPool p(8);
  return p;
}

std::string serialize(const Schedule& schedule) {
  std::ostringstream out;
  write_schedule(out, schedule);
  return out.str();
}

/// Independent certification gate: a fixture is only compared — and, under
/// TVEG_REGEN_GOLDEN, only WRITTEN — after the paper-text oracle accepts
/// it. scripts/regen_golden.sh therefore cannot commit a schedule that is
/// byte-stable but infeasible.
void expect_certified(const std::string& name, const Schedule& schedule,
                      const trace::ContactTrace& t,
                      const TmedbInstance& instance,
                      channel::ChannelModel model) {
  const channel::RadioParams& radio = instance.tveg->radio();
  certify::Options opt;
  opt.source = instance.source;
  opt.deadline = instance.deadline;
  opt.epsilon = instance.effective_epsilon();
  opt.tau = instance.tveg->latency();
  opt.budget = instance.budget;
  opt.targets = instance.targets;
  opt.model = model;
  opt.noise_density = radio.noise_density;
  opt.decoding_threshold_db = radio.decoding_threshold_db;
  opt.path_loss_exponent = radio.path_loss_exponent;
  opt.w_min = radio.w_min;
  opt.w_max = radio.w_max;
  std::vector<certify::Transmission> txs;
  for (const Transmission& tx : schedule.transmissions())
    txs.push_back({tx.relay, tx.time, tx.cost});
  const certify::Verdict verdict = certify::verify(t, txs, opt);
  ASSERT_TRUE(verdict.feasible)
      << "schedule for fixture " << name
      << " failed independent certification — refusing to "
      << (regen() ? "write" : "accept") << " it: " << verdict.json();
}

void check_golden(const std::string& name, const Schedule& schedule,
                  const trace::ContactTrace& t, const TmedbInstance& instance,
                  channel::ChannelModel model) {
  expect_certified(name, schedule, t, instance, model);
  const std::string path = std::string(TVEG_GOLDEN_DIR) + "/" + name;
  const std::string got = serialize(schedule);
  if (regen()) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write fixture " << path;
    out << got;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing fixture " << path << " — run scripts/regen_golden.sh";
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(want.str(), got)
      << "schedule drifted from fixture " << name
      << "; if intentional, regenerate with scripts/regen_golden.sh";
}

trace::ContactTrace golden_trace(std::uint64_t seed, int nodes) {
  trace::SnapshotConfig cfg;
  cfg.nodes = nodes;
  cfg.slot = 20;
  cfg.horizon = 200;
  cfg.p = 0.3;
  cfg.seed = seed;
  return trace::generate_snapshots(cfg);
}

Tveg make_tveg(const trace::ContactTrace& t, channel::ChannelModel model) {
  Tveg tveg(t, unit_radio(), {.model = model});
  tveg.attach_cache(std::make_shared<EdWeightCache>());
  return tveg;
}

TEST(GoldenSchedules, EedcbGreedyLevel2) {
  const auto t = golden_trace(17, 10);
  const Tveg tveg = make_tveg(t, channel::ChannelModel::kStep);
  EedcbOptions opt;
  opt.method = SteinerMethod::kRecursiveGreedy;
  opt.steiner_level = 2;
  opt.pool = &pool();
  const TmedbInstance inst{&tveg, 0, 200.0};
  const auto r = run_eedcb(inst, opt);
  ASSERT_TRUE(r.covered_all);
  check_golden("eedcb_greedy_l2.sched", r.schedule, t, inst,
               channel::ChannelModel::kStep);
}

TEST(GoldenSchedules, EedcbShortestPath) {
  const auto t = golden_trace(23, 12);
  const Tveg tveg = make_tveg(t, channel::ChannelModel::kStep);
  EedcbOptions opt;
  opt.method = SteinerMethod::kShortestPath;
  opt.pool = &pool();
  const TmedbInstance inst{&tveg, 0, 200.0};
  const auto r = run_eedcb(inst, opt);
  ASSERT_TRUE(r.covered_all);
  check_golden("eedcb_spt.sched", r.schedule, t, inst,
               channel::ChannelModel::kStep);
}

TEST(GoldenSchedules, EedcbMulticastNoExpansion) {
  const auto t = golden_trace(29, 9);
  const Tveg tveg = make_tveg(t, channel::ChannelModel::kStep);
  EedcbOptions opt;
  opt.power_expansion = false;
  opt.pool = &pool();
  TmedbInstance inst{&tveg, 0, 200.0};
  inst.targets = {2, 5, 7};
  const auto r = run_eedcb(inst, opt);
  ASSERT_TRUE(r.covered_all);
  check_golden("eedcb_multicast_noexp.sched", r.schedule, t, inst,
               channel::ChannelModel::kStep);
}

TEST(GoldenSchedules, FrEedcbRayleigh) {
  const auto t = golden_trace(31, 7);
  const Tveg tveg = make_tveg(t, channel::ChannelModel::kRayleigh);
  EedcbOptions opt;
  opt.pool = &pool();
  const TmedbInstance inst{&tveg, 0, 200.0};
  const auto r = run_fr_eedcb(inst, opt);
  ASSERT_TRUE(r.feasible());
  check_golden("fr_eedcb_rayleigh.sched", r.schedule(), t, inst,
               channel::ChannelModel::kRayleigh);
}

}  // namespace
}  // namespace tveg::core
