// Shared machinery for the metamorphic property harness (tests/prop).
//
// Three pieces:
//  * a seeded instance generator (slotted snapshot traces, small N) driven
//    by support::stream_seed so every relation draws an independent,
//    reproducible stream — override the base seed with TVEG_PROP_SEED;
//  * trace transforms (node relabeling, time translation, edge addition)
//    that the relations compare against;
//  * an exact brute-force optimum for the step channel with τ = 0. It is a
//    THIRD implementation of the problem semantics (independent of both the
//    production solvers and the certifier), so a metamorphic failure cannot
//    be explained away by a shared misreading of the paper.
//
// The brute force exploits the slot structure of snapshot traces: adjacency
// and distances are constant within a slot, so transmitting at slot starts
// loses no generality (Theorem 5.2's DTS collapses to slot boundaries when
// τ = 0). It runs Dijkstra over (informed-set, slot) states; a transition
// picks a relay from the informed set, a slot no earlier than the current
// one (causality), and a power equal to one adjacent pair's step threshold
// — any other power is dominated. States: 2^N × slots, tiny for N ≤ 6.
#pragma once

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <queue>
#include <tuple>
#include <vector>

#include "channel/radio.hpp"
#include "support/math.hpp"
#include "support/rng.hpp"
#include "tools/certify/certify.hpp"
#include "trace/contact_trace.hpp"
#include "trace/generators.hpp"

namespace tveg::prop {

/// Slot length / horizon every generated instance uses; the brute force
/// depends on kSlot for its candidate transmission times.
constexpr Time kSlot = 20.0;
constexpr Time kHorizon = 200.0;

/// Base seed for all relations; override with TVEG_PROP_SEED=<n> to explore
/// a different universe (failures print the instance seed, which is derived
/// from this base, so a repro needs both).
inline std::uint64_t base_seed() {
  if (const char* env = std::getenv("TVEG_PROP_SEED"))
    return std::strtoull(env, nullptr, 10);
  return 0x7ce9;
}

inline channel::RadioParams unit_radio() {
  channel::RadioParams r;
  r.noise_density = 1.0;
  r.decoding_threshold_db = 0.0;
  r.path_loss_exponent = 2.0;
  r.epsilon = 0.01;
  r.w_max = support::kInf;
  return r;
}

inline trace::ContactTrace gen_trace(std::uint64_t seed, int nodes) {
  trace::SnapshotConfig cfg;
  cfg.nodes = nodes;
  cfg.slot = kSlot;
  cfg.horizon = kHorizon;
  cfg.p = 0.25 + 0.05 * static_cast<double>(seed % 4);
  cfg.seed = seed;
  return trace::generate_snapshots(cfg);
}

/// Relabels nodes through `perm` (perm[old] = new). Horizon and times are
/// untouched; ContactTrace::add renormalizes endpoint order.
inline trace::ContactTrace relabel(const trace::ContactTrace& t,
                                   const std::vector<NodeId>& perm) {
  trace::ContactTrace out(t.node_count(), t.horizon());
  for (const trace::Contact& c : t.contacts())
    out.add({perm[static_cast<std::size_t>(c.a)],
             perm[static_cast<std::size_t>(c.b)], c.start, c.end, c.distance});
  return out;
}

/// The rotation permutation i -> (i + 1) mod n: deterministic, nontrivial,
/// and well defined for any node count (the shrinker may re-invoke a
/// relation on a trace with fewer nodes).
inline std::vector<NodeId> rotation(NodeId n) {
  std::vector<NodeId> perm(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i)
    perm[static_cast<std::size_t>(i)] = (i + 1) % n;
  return perm;
}

/// Shifts every contact (and the horizon) `delta` later in time.
inline trace::ContactTrace translate(const trace::ContactTrace& t,
                                     Time delta) {
  trace::ContactTrace out(t.node_count(), t.horizon() + delta);
  for (const trace::Contact& c : t.contacts())
    out.add({c.a, c.b, c.start + delta, c.end + delta, c.distance});
  return out;
}

/// Adds one slot-long unit-distance contact for the first (slot, pair) hole
/// found; returns nullopt on a complete trace (nothing to add).
inline std::optional<trace::ContactTrace> add_one_edge(
    const trace::ContactTrace& t) {
  const NodeId n = t.node_count();
  for (Time s = 0.0; s + kSlot <= t.horizon(); s += kSlot) {
    for (NodeId a = 0; a < n; ++a) {
      for (NodeId b = a + 1; b < n; ++b) {
        bool present = false;
        for (const trace::Contact& c : t.contacts())
          if (c.a == a && c.b == b && c.start <= s && s < c.end)
            present = true;
        if (present) continue;
        trace::ContactTrace out(n, t.horizon());
        for (const trace::Contact& c : t.contacts()) out.add(c);
        out.add({a, b, s, s + kSlot, 1.0});
        return out;
      }
    }
  }
  return std::nullopt;
}

/// Exact minimum broadcast cost (step channel, τ = 0, source 0-informed at
/// time 0) to inform `targets` (all nodes when empty) by `deadline`.
/// Returns nullopt when unreachable.
inline std::optional<double> brute_force_opt(const trace::ContactTrace& t,
                                             const channel::RadioParams& radio,
                                             NodeId source, Time deadline,
                                             std::vector<NodeId> targets = {}) {
  const int n = t.node_count();
  if (n > 16) return std::nullopt;  // harness generates N <= 6

  std::vector<Time> times;
  for (Time s = 0.0; s < t.horizon() && s <= deadline; s += kSlot)
    times.push_back(s);
  const std::size_t nt = times.size();
  if (nt == 0) return std::nullopt;

  // d2[ti][a][b] = distance during slot ti, 0 when not adjacent.
  std::vector<std::vector<std::vector<double>>> dist(
      nt, std::vector<std::vector<double>>(
              static_cast<std::size_t>(n),
              std::vector<double>(static_cast<std::size_t>(n), 0.0)));
  for (const trace::Contact& c : t.contacts()) {
    for (std::size_t ti = 0; ti < nt; ++ti) {
      if (c.start <= times[ti] && times[ti] < c.end) {
        dist[ti][static_cast<std::size_t>(c.a)][static_cast<std::size_t>(
            c.b)] = c.distance;
        dist[ti][static_cast<std::size_t>(c.b)][static_cast<std::size_t>(
            c.a)] = c.distance;
      }
    }
  }

  std::uint32_t goal = 0;
  if (targets.empty()) {
    goal = (n >= 32) ? ~std::uint32_t{0} : ((std::uint32_t{1} << n) - 1);
  } else {
    for (const NodeId v : targets) goal |= std::uint32_t{1} << v;
    goal |= std::uint32_t{1} << source;
  }

  const std::size_t nstates = (std::size_t{1} << n) * nt;
  std::vector<double> best(nstates, support::kInf);
  using Item = std::tuple<double, std::uint32_t, std::size_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
  const std::uint32_t start = std::uint32_t{1} << source;
  best[start * nt + 0] = 0.0;
  heap.emplace(0.0, start, std::size_t{0});

  double answer = support::kInf;
  while (!heap.empty()) {
    const auto [cost, mask, ti] = heap.top();
    heap.pop();
    if (cost > best[mask * nt + ti]) continue;
    if ((mask & goal) == goal) {
      answer = std::min(answer, cost);
      continue;
    }
    if (cost >= answer) continue;
    for (std::size_t tj = ti; tj < nt; ++tj) {
      for (NodeId r = 0; r < n; ++r) {
        if (!(mask & (std::uint32_t{1} << r))) continue;
        // Candidate powers: each adjacent pair's exact threshold.
        for (NodeId x = 0; x < n; ++x) {
          const double d = dist[tj][static_cast<std::size_t>(r)]
                               [static_cast<std::size_t>(x)];
          if (d <= 0.0) continue;
          const Cost w = radio.step_min_cost(d);
          std::uint32_t next = mask;
          for (NodeId y = 0; y < n; ++y) {
            const double dy = dist[tj][static_cast<std::size_t>(r)]
                                  [static_cast<std::size_t>(y)];
            if (dy > 0.0 && radio.step_min_cost(dy) <= w)
              next |= std::uint32_t{1} << y;
          }
          const double ncost = cost + w;
          if (ncost < best[next * nt + tj]) {
            best[next * nt + tj] = ncost;
            heap.emplace(ncost, next, tj);
          }
        }
      }
    }
  }
  if (answer == support::kInf) return std::nullopt;
  return answer;
}

}  // namespace tveg::prop
