// Metamorphic property harness (seeded, ≥200 instances per relation).
//
// Each relation states how a *transformed* instance must relate to the
// original — no expected outputs are pinned, so these tests hold even as
// the solver heuristics evolve:
//
//   relation                     oracle(s)
//   node relabeling invariance   brute force equality + certifier
//   time translation invariance  brute force equality + certifier
//   deadline relaxation          brute force monotone + certifier
//   ε relaxation                 certifier (feasible at ε ⇒ feasible at ε'≥ε)
//   cost scaling equivariance    brute force ×k exact + solver schedule ×k
//   edge addition                brute force monotone (more contacts never
//                                make the optimum worse)
//   robust ladder certifies      certifier accepts every rung's schedule
//
// A violation is shrunk with tests/prop/shrink.hpp before being reported,
// so the failure message carries a paste-able minimal reproducer plus the
// instance seed. Override the base seed with TVEG_PROP_SEED=<n>.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <optional>
#include <vector>

#include "core/eedcb.hpp"
#include "core/fr.hpp"
#include "core/tveg.hpp"
#include "fault/degrade.hpp"
#include "prop/prop_support.hpp"
#include "prop/shrink.hpp"
#include "support/rng.hpp"
#include "tools/certify/certify.hpp"

namespace tveg::prop {
namespace {

constexpr int kInstances = 200;
constexpr double kRelTol = 1e-9;

certify::Options certify_options(const core::TmedbInstance& instance,
                                 channel::ChannelModel model) {
  const channel::RadioParams& radio = instance.tveg->radio();
  certify::Options opt;
  opt.source = instance.source;
  opt.deadline = instance.deadline;
  opt.epsilon = instance.effective_epsilon();
  opt.tau = instance.tveg->latency();
  opt.budget = instance.budget;
  opt.targets = instance.targets;
  opt.model = model;
  opt.noise_density = radio.noise_density;
  opt.decoding_threshold_db = radio.decoding_threshold_db;
  opt.path_loss_exponent = radio.path_loss_exponent;
  opt.w_min = radio.w_min;
  opt.w_max = radio.w_max;
  return opt;
}

std::vector<certify::Transmission> to_certify(const core::Schedule& s) {
  std::vector<certify::Transmission> out;
  for (const core::Transmission& tx : s.transmissions())
    out.push_back({tx.relay, tx.time, tx.cost});
  return out;
}

bool close(double a, double b) {
  return std::fabs(a - b) <= kRelTol * std::max({1.0, std::fabs(a),
                                                 std::fabs(b)});
}

/// Runs `violates` over kInstances seeded traces; on a violation, shrinks
/// the trace and fails with a minimal reproducer.
void check_relation(const char* relation, std::uint64_t stream,
                    const Predicate& violates, int nodes_lo = 5,
                    int nodes_hi = 6) {
  const std::uint64_t base = base_seed();
  for (int i = 0; i < kInstances; ++i) {
    const std::uint64_t seed = support::stream_seed(base ^ stream, static_cast<std::uint64_t>(i));
    const int nodes = nodes_lo + static_cast<int>(seed % static_cast<std::uint64_t>(nodes_hi - nodes_lo + 1));
    const trace::ContactTrace t = gen_trace(seed, nodes);
    if (!violates(t)) continue;
    const trace::ContactTrace small = shrink_trace(t, violates);
    FAIL() << relation << " violated (instance " << i << ", seed " << seed
           << ", TVEG_PROP_SEED base " << base << "); shrunk reproducer:\n"
           << describe(small);
  }
}

// Guards the whole harness against vacuity: the generator must produce
// instances where the brute force finds a finite optimum and the solver
// covers everything, otherwise every relation above it passes trivially.
TEST(Metamorphic, GeneratedInstancesAreNonVacuous) {
  const std::uint64_t base = base_seed();
  int solvable = 0, covered = 0;
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t seed = support::stream_seed(base, static_cast<std::uint64_t>(i));
    const trace::ContactTrace t = gen_trace(seed, 5 + static_cast<int>(seed % 2));
    const channel::RadioParams radio = unit_radio();
    if (brute_force_opt(t, radio, 0, kHorizon)) ++solvable;
    const core::Tveg tveg(t, radio, {.model = channel::ChannelModel::kStep});
    if (core::run_eedcb(core::TmedbInstance{&tveg, 0, kHorizon},
                        core::EedcbOptions{})
            .covered_all)
      ++covered;
  }
  EXPECT_GE(solvable, 25);
  EXPECT_GE(covered, 25);
}

TEST(Metamorphic, NodeRelabelingInvariance) {
  check_relation("node-relabeling invariance", 0x01, [](const trace::ContactTrace& t) {
    const channel::RadioParams radio = unit_radio();
    const std::vector<NodeId> perm = rotation(t.node_count());
    const trace::ContactTrace rt = relabel(t, perm);

    // Oracle 1: the exact optimum is identical under relabeling.
    const auto a = brute_force_opt(t, radio, 0, kHorizon);
    const auto b = brute_force_opt(rt, radio, perm[0], kHorizon);
    if (a.has_value() != b.has_value()) return true;
    if (a && !close(*a, *b)) return true;

    // Oracle 2: the solver's schedule, relabeled, certifies on the
    // relabeled trace.
    const core::Tveg tveg(t, radio, {.model = channel::ChannelModel::kStep});
    const core::TmedbInstance instance{&tveg, 0, kHorizon};
    const auto outcome = core::run_eedcb(instance, core::EedcbOptions{});
    if (!outcome.covered_all) return false;
    std::vector<certify::Transmission> txs;
    for (const core::Transmission& tx : outcome.schedule.transmissions())
      txs.push_back({perm[static_cast<std::size_t>(tx.relay)], tx.time,
                     tx.cost});
    certify::Options opt = certify_options(instance, channel::ChannelModel::kStep);
    opt.source = perm[0];
    return !certify::verify(rt, txs, opt).feasible;
  });
}

TEST(Metamorphic, TimeTranslationInvariance) {
  constexpr Time kDelta = 2 * kSlot;
  check_relation("time-translation invariance", 0x02, [](const trace::ContactTrace& t) {
    const channel::RadioParams radio = unit_radio();
    const trace::ContactTrace st = translate(t, kDelta);

    const auto a = brute_force_opt(t, radio, 0, t.horizon());
    const auto b = brute_force_opt(st, radio, 0, t.horizon() + kDelta);
    if (a.has_value() != b.has_value()) return true;
    if (a && !close(*a, *b)) return true;

    const core::Tveg tveg(t, radio, {.model = channel::ChannelModel::kStep});
    const core::TmedbInstance instance{&tveg, 0, t.horizon()};
    const auto outcome = core::run_eedcb(instance, core::EedcbOptions{});
    if (!outcome.covered_all) return false;
    std::vector<certify::Transmission> txs;
    for (const core::Transmission& tx : outcome.schedule.transmissions())
      txs.push_back({tx.relay, tx.time + kDelta, tx.cost});
    certify::Options opt = certify_options(instance, channel::ChannelModel::kStep);
    opt.deadline = t.horizon() + kDelta;
    return !certify::verify(st, txs, opt).feasible;
  });
}

TEST(Metamorphic, DeadlineRelaxationMonotonicity) {
  constexpr Time kTight = 120.0, kLoose = 200.0;
  check_relation("deadline-relaxation monotonicity", 0x03, [](const trace::ContactTrace& t) {
    const channel::RadioParams radio = unit_radio();
    const auto tight = brute_force_opt(t, radio, 0, kTight);
    const auto loose = brute_force_opt(t, radio, 0, kLoose);
    // A schedule for the tight deadline is valid for the loose one, so the
    // loose optimum can only be cheaper.
    if (tight && (!loose || *loose > *tight * (1.0 + kRelTol))) return true;

    // And the solver's tight-deadline schedule certifies under the loose
    // deadline verbatim.
    const core::Tveg tveg(t, radio, {.model = channel::ChannelModel::kStep});
    const core::TmedbInstance instance{&tveg, 0, kTight};
    const auto outcome = core::run_eedcb(instance, core::EedcbOptions{});
    if (!outcome.covered_all) return false;
    certify::Options opt = certify_options(instance, channel::ChannelModel::kStep);
    opt.deadline = kLoose;
    return !certify::verify(t, to_certify(outcome.schedule), opt).feasible;
  });
}

TEST(Metamorphic, EpsilonRelaxationMonotonicity) {
  check_relation("epsilon-relaxation monotonicity", 0x04, [](const trace::ContactTrace& t) {
    const channel::RadioParams radio = unit_radio();  // epsilon = 0.01
    const core::Tveg tveg(t, radio,
                          {.model = channel::ChannelModel::kRayleigh});
    const core::TmedbInstance instance{&tveg, 0, kHorizon};
    const auto outcome = core::run_fr_eedcb(instance, core::EedcbOptions{});
    if (!outcome.feasible()) return false;
    // Feasible at ε must stay feasible at every ε' ≥ ε.
    for (const double eps : {0.02, 0.1, 0.5}) {
      certify::Options opt =
          certify_options(instance, channel::ChannelModel::kRayleigh);
      opt.epsilon = eps;
      if (!certify::verify(t, to_certify(outcome.schedule()), opt).feasible)
        return true;
    }
    return false;
  });
}

TEST(Metamorphic, CostScalingEquivariance) {
  constexpr double kScale = 4.0;  // power of two: scaling is FP-exact
  check_relation("cost-scaling equivariance", 0x05, [](const trace::ContactTrace& t) {
    const channel::RadioParams radio = unit_radio();
    channel::RadioParams scaled = radio;
    scaled.noise_density *= kScale;

    const auto a = brute_force_opt(t, radio, 0, kHorizon);
    const auto b = brute_force_opt(t, scaled, 0, kHorizon);
    if (a.has_value() != b.has_value()) return true;
    if (a && !close(*a * kScale, *b)) return true;

    // The solver must make identical decisions (every comparison scales
    // uniformly), so the schedules match transmission-for-transmission with
    // costs exactly ×kScale.
    const core::Tveg tveg1(t, radio, {.model = channel::ChannelModel::kStep});
    const core::Tveg tveg2(t, scaled,
                           {.model = channel::ChannelModel::kStep});
    const auto r1 = core::run_eedcb(core::TmedbInstance{&tveg1, 0, kHorizon},
                                    core::EedcbOptions{});
    const auto r2 = core::run_eedcb(core::TmedbInstance{&tveg2, 0, kHorizon},
                                    core::EedcbOptions{});
    if (r1.covered_all != r2.covered_all) return true;
    const auto& s1 = r1.schedule.transmissions();
    const auto& s2 = r2.schedule.transmissions();
    if (s1.size() != s2.size()) return true;
    for (std::size_t i = 0; i < s1.size(); ++i) {
      if (s1[i].relay != s2[i].relay || s1[i].time != s2[i].time) return true;
      if (!close(s1[i].cost * kScale, s2[i].cost)) return true;
    }
    return false;
  });
}

TEST(Metamorphic, EdgeAdditionNeverIncreasesOptimalCost) {
  check_relation("edge-addition monotonicity", 0x06, [](const trace::ContactTrace& t) {
    const channel::RadioParams radio = unit_radio();
    const auto denser = add_one_edge(t);
    if (!denser) return false;  // already complete
    const auto before = brute_force_opt(t, radio, 0, kHorizon);
    if (!before) return false;
    const auto after = brute_force_opt(*denser, radio, 0, kHorizon);
    // Extra contacts only add options: the optimum cannot get worse.
    return !after || *after > *before * (1.0 + kRelTol);
  });
}

TEST(Metamorphic, EveryRobustLadderRungCertifies) {
  int rung_index = 0;
  check_relation("robust-ladder schedules certify", 0x07, [&rung_index](const trace::ContactTrace& t) {
    const fault::SolverRung rung =
        std::array{fault::SolverRung::kEedcb, fault::SolverRung::kBip,
                   fault::SolverRung::kGreed}[static_cast<std::size_t>(
            rung_index++ % 3)];
    const core::Tveg tveg(t, unit_radio(),
                          {.model = channel::ChannelModel::kStep});
    const core::TmedbInstance instance{&tveg, 0, kHorizon};
    fault::RobustSolveOptions opt;
    opt.start = rung;
    const auto outcome = fault::robust_solve(instance, tveg.build_dts(), opt);
    if (!outcome.result.covered_all) return false;
    return !certify::verify(
                t, to_certify(outcome.result.schedule),
                certify_options(instance, channel::ChannelModel::kStep))
                .feasible;
  });
}

}  // namespace
}  // namespace tveg::prop
