// Unit tests for the greedy trace shrinker: the shrunk instance must still
// violate its property (that is the shrinker's contract), must be locally
// minimal, and shrinking must be idempotent.
#include "prop/shrink.hpp"

#include <gtest/gtest.h>

#include "prop/prop_support.hpp"

namespace tveg::prop {
namespace {

/// A busy 6-node trace with exactly one "poison" contact (0-1 at distance
/// 7) buried among unit-distance noise.
trace::ContactTrace noisy_trace() {
  trace::ContactTrace t(6, 200.0);
  t.add({0, 1, 40.0, 60.0, 7.0});  // the poison contact
  t.add({0, 2, 0.0, 20.0, 1.0});
  t.add({1, 3, 20.0, 40.0, 1.0});
  t.add({2, 4, 60.0, 80.0, 1.0});
  t.add({3, 5, 80.0, 100.0, 1.0});
  t.add({4, 5, 100.0, 120.0, 1.0});
  t.add({0, 5, 120.0, 140.0, 1.0});
  return t;
}

bool has_far_contact(const trace::ContactTrace& t) {
  for (const trace::Contact& c : t.contacts())
    if (c.distance >= 5.0) return true;
  return false;
}

TEST(Shrink, ResultStillViolatesTheProperty) {
  const trace::ContactTrace small = shrink_trace(noisy_trace(), has_far_contact);
  EXPECT_TRUE(has_far_contact(small));
}

TEST(Shrink, ReducesToTheSinglePoisonContact) {
  const trace::ContactTrace small = shrink_trace(noisy_trace(), has_far_contact);
  ASSERT_EQ(small.contact_count(), 1u);
  EXPECT_DOUBLE_EQ(small.contacts()[0].distance, 7.0);
  // Node and horizon dimensions shrink too: only nodes 0 and 1 and the
  // time range of the poison contact survive.
  EXPECT_EQ(small.node_count(), 2);
  EXPECT_LE(small.horizon(), 60.0);
}

TEST(Shrink, ResultIsLocallyMinimal) {
  const trace::ContactTrace small = shrink_trace(noisy_trace(), has_far_contact);
  for (std::size_t i = 0; i < small.contact_count(); ++i)
    EXPECT_FALSE(has_far_contact(drop_contact(small, i)));
}

TEST(Shrink, Idempotent) {
  const trace::ContactTrace once = shrink_trace(noisy_trace(), has_far_contact);
  const trace::ContactTrace twice = shrink_trace(once, has_far_contact);
  EXPECT_EQ(twice.contacts(), once.contacts());
  EXPECT_EQ(twice.node_count(), once.node_count());
  EXPECT_DOUBLE_EQ(twice.horizon(), once.horizon());
}

TEST(Shrink, ReturnsInputWhenPredicateIsFalse) {
  trace::ContactTrace t(3, 50.0);
  t.add({0, 1, 0.0, 10.0, 1.0});
  const trace::ContactTrace out =
      shrink_trace(t, [](const trace::ContactTrace&) { return false; });
  EXPECT_EQ(out.contacts(), t.contacts());
}

/// Shrinking a semantic property (a real solver-level violation shape):
/// "the brute-force optimum exceeds 9" — the shrinker must keep whatever
/// expensive structure forces that cost and discard the rest.
TEST(Shrink, PreservesSemanticPropertiesThroughSolverCalls) {
  trace::ContactTrace t(4, 100.0);
  t.add({0, 1, 0.0, 20.0, 4.0});   // forced expensive hop: cost 16
  t.add({1, 2, 20.0, 40.0, 1.0});
  t.add({1, 3, 40.0, 60.0, 1.0});
  t.add({2, 3, 60.0, 80.0, 1.0});
  const auto expensive = [](const trace::ContactTrace& tr) {
    const auto opt = brute_force_opt(tr, unit_radio(), 0, 100.0);
    return opt.has_value() && *opt > 9.0;
  };
  ASSERT_TRUE(expensive(t));
  const trace::ContactTrace small = shrink_trace(t, expensive);
  EXPECT_TRUE(expensive(small));
  EXPECT_LT(small.contact_count(), t.contact_count());
  // The 0-1 distance-4 contact is what makes the instance expensive; it
  // must survive.
  bool kept = false;
  for (const trace::Contact& c : small.contacts())
    if (c.distance == 4.0) kept = true;
  EXPECT_TRUE(kept);
}

}  // namespace
}  // namespace tveg::prop
