// Greedy trace shrinker for the metamorphic property harness.
//
// When a relation fails on a generated instance, the raw counterexample is a
// trace with dozens of contacts — useless for debugging. shrink_trace()
// minimizes it while preserving the violation: it repeatedly tries to drop a
// contact, drop the highest node, or cut the horizon, keeping each edit only
// if the caller's predicate still reports a violation. The result is a local
// minimum: removing any single remaining contact makes the violation vanish.
//
// The predicate convention is "returns true while the property is STILL
// violated" — the shrinker never returns a trace for which the predicate is
// false, so a shrunk reproducer is guaranteed to still exhibit the bug.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <utility>

#include "trace/contact_trace.hpp"

namespace tveg::prop {

using Predicate = std::function<bool(const trace::ContactTrace&)>;

/// Rebuilds `t` without the contact at index `skip` (node count and horizon
/// unchanged).
inline trace::ContactTrace drop_contact(const trace::ContactTrace& t,
                                        std::size_t skip) {
  trace::ContactTrace out(t.node_count(), t.horizon());
  for (std::size_t i = 0; i < t.contacts().size(); ++i)
    if (i != skip) out.add(t.contacts()[i]);
  return out;
}

/// Rebuilds `t` with the horizon cut to `horizon`, keeping only contacts
/// that fit entirely inside the new window.
inline trace::ContactTrace cut_horizon(const trace::ContactTrace& t,
                                       Time horizon) {
  trace::ContactTrace out(t.node_count(), horizon);
  for (const trace::Contact& c : t.contacts())
    if (c.end <= horizon) out.add(c);
  return out;
}

/// Greedily minimizes `t` subject to `violates` staying true. Terminates:
/// every accepted edit strictly shrinks (fewer contacts, fewer nodes, or a
/// smaller horizon) and none of the moves can grow the trace.
inline trace::ContactTrace shrink_trace(trace::ContactTrace t,
                                        const Predicate& violates) {
  if (!violates(t)) return t;  // nothing to preserve; caller bug
  bool changed = true;
  while (changed) {
    changed = false;
    // Pass 1: drop single contacts (scan from the back so erasing does not
    // disturb the indices still to be visited).
    for (std::size_t i = t.contacts().size(); i-- > 0;) {
      trace::ContactTrace candidate = drop_contact(t, i);
      if (violates(candidate)) {
        t = std::move(candidate);
        changed = true;
      }
    }
    // Pass 2: drop the highest-numbered node.
    while (t.node_count() > 2) {
      trace::ContactTrace candidate = t.head_nodes(t.node_count() - 1);
      if (!violates(candidate)) break;
      t = std::move(candidate);
      changed = true;
    }
    // Pass 3: cut the horizon to the last contact end (then try halving).
    Time last_end = 0.0;
    for (const trace::Contact& c : t.contacts())
      if (c.end > last_end) last_end = c.end;
    for (const Time h : {last_end, t.horizon() / 2}) {
      if (h > 0.0 && h < t.horizon()) {
        trace::ContactTrace candidate = cut_horizon(t, h);
        if (violates(candidate)) {
          t = std::move(candidate);
          changed = true;
        }
      }
    }
  }
  return t;
}

/// Renders a trace as a paste-able reproducer (one contact per line).
inline std::string describe(const trace::ContactTrace& t) {
  std::ostringstream os;
  os << "ContactTrace t(" << t.node_count() << ", " << t.horizon() << ");\n";
  for (const trace::Contact& c : t.contacts())
    os << "t.add({" << c.a << ", " << c.b << ", " << c.start << ", " << c.end
       << ", " << c.distance << "});\n";
  return os.str();
}

}  // namespace tveg::prop
