#include "channel/radio.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tveg::channel {
namespace {

RadioParams paper_params() {
  RadioParams r;
  r.noise_density = 4.32e-21;
  r.decoding_threshold_db = 25.9;
  r.path_loss_exponent = 2.0;
  r.w_max = 1.0;
  r.epsilon = 0.01;
  return r;
}

TEST(Radio, GammaLinear) {
  EXPECT_NEAR(paper_params().gamma_linear(), 389.0, 1.0);
}

TEST(Radio, GainFollowsPathLoss) {
  const auto r = paper_params();
  EXPECT_DOUBLE_EQ(r.gain(1.0), 1.0);
  EXPECT_DOUBLE_EQ(r.gain(2.0), 0.25);
  EXPECT_DOUBLE_EQ(r.gain(10.0), 0.01);
}

TEST(Radio, StepMinCostScalesWithDistanceSquared) {
  const auto r = paper_params();
  EXPECT_NEAR(r.step_min_cost(2.0) / r.step_min_cost(1.0), 4.0, 1e-9);
  EXPECT_NEAR(r.step_min_cost(1.0), 4.32e-21 * r.gamma_linear(), 1e-30);
}

TEST(Radio, RayleighBetaEqualsStepCost) {
  // With h = d^-α both reduce to N0·γ·d^α.
  const auto r = paper_params();
  for (double d : {1.0, 3.0, 10.0})
    EXPECT_NEAR(r.rayleigh_beta(d), r.step_min_cost(d), 1e-30);
}

TEST(Radio, CubicPathLoss) {
  auto r = paper_params();
  r.path_loss_exponent = 3.0;
  EXPECT_NEAR(r.rayleigh_beta(2.0) / r.rayleigh_beta(1.0), 8.0, 1e-9);
}

TEST(Radio, GainRejectsNonPositiveDistance) {
  const auto r = paper_params();
  EXPECT_THROW(r.gain(0.0), std::invalid_argument);
  EXPECT_THROW(r.gain(-1.0), std::invalid_argument);
}

TEST(Radio, ValidateCatchesBadParams) {
  auto r = paper_params();
  r.epsilon = 1.5;
  EXPECT_THROW(r.validate(), std::invalid_argument);
  r = paper_params();
  r.w_max = 0.0;
  r.w_min = 0.0;
  EXPECT_THROW(r.validate(), std::invalid_argument);
  r = paper_params();
  r.noise_density = 0.0;
  EXPECT_THROW(r.validate(), std::invalid_argument);
  EXPECT_NO_THROW(paper_params().validate());
}

}  // namespace
}  // namespace tveg::channel
