#include "channel/special_functions.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tveg::channel {
namespace {

TEST(GammaP, KnownValues) {
  // P(1, x) = 1 - e^{-x}.
  EXPECT_NEAR(regularized_gamma_p(1.0, 1.0), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_NEAR(regularized_gamma_p(1.0, 2.5), 1.0 - std::exp(-2.5), 1e-12);
  // P(1/2, x) = erf(sqrt(x)).
  EXPECT_NEAR(regularized_gamma_p(0.5, 1.0), std::erf(1.0), 1e-10);
  EXPECT_NEAR(regularized_gamma_p(0.5, 4.0), std::erf(2.0), 1e-10);
}

TEST(GammaP, Boundaries) {
  EXPECT_DOUBLE_EQ(regularized_gamma_p(2.0, 0.0), 0.0);
  EXPECT_NEAR(regularized_gamma_p(2.0, 1e3), 1.0, 1e-12);
}

TEST(GammaP, Monotone) {
  double prev = 0;
  for (double x = 0.1; x < 20; x += 0.1) {
    const double v = regularized_gamma_p(3.0, x);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(GammaP, ComplementSumsToOne) {
  for (double a : {0.5, 1.0, 2.0, 7.5}) {
    for (double x : {0.1, 1.0, 5.0, 30.0}) {
      EXPECT_NEAR(regularized_gamma_p(a, x) + regularized_gamma_q(a, x), 1.0,
                  1e-12);
    }
  }
}

TEST(GammaP, RejectsBadArguments) {
  EXPECT_THROW(regularized_gamma_p(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(regularized_gamma_p(1.0, -1.0), std::invalid_argument);
}

TEST(BesselI0, KnownValues) {
  EXPECT_NEAR(bessel_i0(0.0), 1.0, 1e-14);
  EXPECT_NEAR(bessel_i0(1.0), 1.2660658777520084, 1e-12);
  EXPECT_NEAR(bessel_i0(5.0), 27.239871823604442, 1e-9);
}

TEST(BesselI0, LargeArgumentAsymptotic) {
  // I0(20) ≈ 4.355828e7 (tabulated).
  EXPECT_NEAR(bessel_i0(20.0) / 4.3558283e7, 1.0, 1e-4);
}

TEST(BesselI1, KnownValues) {
  EXPECT_NEAR(bessel_i1(0.0), 0.0, 1e-14);
  EXPECT_NEAR(bessel_i1(1.0), 0.5651591039924851, 1e-12);
  EXPECT_NEAR(bessel_i1(-1.0), -0.5651591039924851, 1e-12);  // odd function
}

TEST(MarcumQ1, DegenerateCases) {
  EXPECT_DOUBLE_EQ(marcum_q1(1.0, 0.0), 1.0);
  // a = 0: Q1(0, b) = exp(-b²/2) (Rayleigh tail).
  EXPECT_NEAR(marcum_q1(0.0, 1.0), std::exp(-0.5), 1e-10);
  EXPECT_NEAR(marcum_q1(0.0, 2.0), std::exp(-2.0), 1e-10);
}

TEST(MarcumQ1, MonotoneInB) {
  double prev = 1.0;
  for (double b = 0.0; b < 8.0; b += 0.25) {
    const double v = marcum_q1(2.0, b);
    EXPECT_LE(v, prev + 1e-12);
    prev = v;
  }
}

TEST(MarcumQ1, IncreasesWithA) {
  for (double b : {0.5, 1.5, 3.0}) {
    EXPECT_LT(marcum_q1(0.5, b), marcum_q1(2.0, b));
    EXPECT_LT(marcum_q1(2.0, b), marcum_q1(5.0, b) + 1e-12);
  }
}

TEST(MarcumQ1, KnownValue) {
  // Q1(1, 1) ≈ 0.73287 (noncentral χ², 2 dof, λ = 1, at x = 1).
  EXPECT_NEAR(marcum_q1(1.0, 1.0), 0.73287, 2e-5);
  // Q1(1, 2) ≈ 0.26902.
  EXPECT_NEAR(marcum_q1(1.0, 2.0), 0.26902, 2e-5);
}

TEST(MarcumQ1, StaysInUnitInterval) {
  for (double a = 0; a <= 6; a += 0.7) {
    for (double b = 0; b <= 6; b += 0.7) {
      const double v = marcum_q1(a, b);
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

}  // namespace
}  // namespace tveg::channel
