#include "channel/ed_function.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

namespace tveg::channel {
namespace {

TEST(StepEdFunction, IsStepAtThreshold) {
  StepEdFunction f(2.0);
  EXPECT_DOUBLE_EQ(f.failure_probability(0.0), 1.0);
  EXPECT_DOUBLE_EQ(f.failure_probability(1.999), 1.0);
  EXPECT_DOUBLE_EQ(f.failure_probability(2.0), 0.0);
  EXPECT_DOUBLE_EQ(f.failure_probability(100.0), 0.0);
  EXPECT_TRUE(f.deterministic());
}

TEST(StepEdFunction, MinCostIsThreshold) {
  StepEdFunction f(3.5);
  EXPECT_DOUBLE_EQ(f.min_cost_for(0.01), 3.5);
  EXPECT_DOUBLE_EQ(f.min_cost_for(0.5), 3.5);
}

TEST(RayleighEdFunction, MatchesFormula) {
  RayleighEdFunction f(2.0);
  EXPECT_DOUBLE_EQ(f.failure_probability(0.0), 1.0);
  EXPECT_NEAR(f.failure_probability(1.0), 1.0 - std::exp(-2.0), 1e-12);
  EXPECT_NEAR(f.failure_probability(4.0), 1.0 - std::exp(-0.5), 1e-12);
  EXPECT_FALSE(f.deterministic());
}

TEST(RayleighEdFunction, MinCostClosedForm) {
  RayleighEdFunction f(2.0);
  const double eps = 0.01;
  const Cost w = f.min_cost_for(eps);
  EXPECT_NEAR(f.failure_probability(w), eps, 1e-12);
  EXPECT_NEAR(w, 2.0 / std::log(1.0 / 0.99), 1e-9);
}

TEST(RayleighEdFunction, DerivativeClosedFormMatchesNumeric) {
  RayleighEdFunction f(3.0);
  for (double w : {0.5, 1.0, 2.0, 10.0}) {
    const double h = 1e-6 * w;
    const double numeric =
        (f.failure_probability(w + h) - f.failure_probability(w - h)) /
        (2 * h);
    EXPECT_NEAR(f.failure_derivative(w), numeric, 1e-6);
    EXPECT_LE(f.failure_derivative(w), 0.0);
  }
}

TEST(NakagamiEdFunction, ShapeOneIsRayleigh) {
  NakagamiEdFunction nak(1.0, 2.0);
  RayleighEdFunction ray(2.0);
  for (double w : {0.5, 1.0, 3.0, 10.0})
    EXPECT_NEAR(nak.failure_probability(w), ray.failure_probability(w), 1e-10);
}

TEST(NakagamiEdFunction, HigherShapeIsSharper) {
  // More diversity (larger m) → less fading → lower failure at ample power,
  // higher failure at starved power.
  NakagamiEdFunction m1(1.0, 1.0), m4(4.0, 1.0);
  EXPECT_LT(m4.failure_probability(10.0), m1.failure_probability(10.0));
  EXPECT_GT(m4.failure_probability(0.5), m1.failure_probability(0.5));
}

TEST(NakagamiEdFunction, MinCostBisectionIsTight) {
  NakagamiEdFunction f(2.5, 1.7);
  const double eps = 0.05;
  const Cost w = f.min_cost_for(eps);
  EXPECT_NEAR(f.failure_probability(w), eps, 1e-9);
}

TEST(RicianEdFunction, ZeroKIsRayleigh) {
  RicianEdFunction ric(0.0, 2.0);
  RayleighEdFunction ray(2.0);
  for (double w : {0.5, 1.0, 3.0, 10.0})
    EXPECT_NEAR(ric.failure_probability(w), ray.failure_probability(w), 1e-8);
}

TEST(RicianEdFunction, LineOfSightHelps) {
  RicianEdFunction k0(0.0, 1.0), k5(5.0, 1.0);
  EXPECT_LT(k5.failure_probability(5.0), k0.failure_probability(5.0));
}

TEST(RicianEdFunction, MinCostBisectionIsTight) {
  RicianEdFunction f(3.0, 1.0);
  const double eps = 0.01;
  const Cost w = f.min_cost_for(eps);
  EXPECT_NEAR(f.failure_probability(w), eps, 1e-7);
}

TEST(EdFunction, DefaultNumericDerivative) {
  // Nakagami has no closed-form override → exercises the base-class
  // central difference.
  NakagamiEdFunction f(2.0, 1.0);
  const double d = f.failure_derivative(1.0);
  EXPECT_LT(d, 0.0);
  EXPECT_TRUE(std::isfinite(d));
}

TEST(EdFunction, ConstructionGuards) {
  EXPECT_THROW(StepEdFunction(0.0), std::invalid_argument);
  EXPECT_THROW(RayleighEdFunction(-1.0), std::invalid_argument);
  EXPECT_THROW(NakagamiEdFunction(0.3, 1.0), std::invalid_argument);
  EXPECT_THROW(RicianEdFunction(-0.1, 1.0), std::invalid_argument);
}

TEST(EdFunction, ModelNames) {
  EXPECT_STREQ(channel_model_name(ChannelModel::kStep), "step");
  EXPECT_STREQ(channel_model_name(ChannelModel::kRayleigh), "rayleigh");
  EXPECT_STREQ(channel_model_name(ChannelModel::kNakagami), "nakagami");
  EXPECT_STREQ(channel_model_name(ChannelModel::kRician), "rician");
}

// ---------------------------------------------------------------------------
// Property 3.1 as a parameterized property suite over all implementations.
// ---------------------------------------------------------------------------

using EdFactory = std::function<std::unique_ptr<EdFunction>()>;

class EdFunctionProperty
    : public ::testing::TestWithParam<std::pair<const char*, EdFactory>> {};

TEST_P(EdFunctionProperty, VanishesAtHighPower) {
  const auto f = GetParam().second();
  // Property 3.1(i): φ(w) → 0 as w → ∞. The heaviest fading model here
  // (Nakagami m = 1/2) decays like w^{-1/2}, hence the loose threshold.
  EXPECT_LT(f->failure_probability(1e9), 1e-4);
}

TEST_P(EdFunctionProperty, CertainFailureAtZeroPower) {
  const auto f = GetParam().second();
  // Property 3.1(ii): φ(0) = 1.
  EXPECT_DOUBLE_EQ(f->failure_probability(0.0), 1.0);
}

TEST_P(EdFunctionProperty, NonIncreasing) {
  const auto f = GetParam().second();
  // Property 3.1(iv).
  double prev = 1.0;
  for (double w = 0.0; w <= 20.0; w += 0.25) {
    const double v = f->failure_probability(w);
    EXPECT_LE(v, prev + 1e-9) << "at w=" << w;
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    prev = v;
  }
}

TEST_P(EdFunctionProperty, MinCostInverseConsistent) {
  const auto f = GetParam().second();
  for (double target : {0.5, 0.1, 0.01}) {
    const Cost w = f->min_cost_for(target);
    ASSERT_TRUE(std::isfinite(w));
    EXPECT_LE(f->failure_probability(w), target + 1e-7);
    if (!f->deterministic() && w > 1e-9) {
      // Just below the minimum cost the target must be violated.
      EXPECT_GT(f->failure_probability(w * 0.999), target - 1e-7);
    }
  }
}

TEST_P(EdFunctionProperty, RejectsNegativeCost) {
  const auto f = GetParam().second();
  EXPECT_THROW(f->failure_probability(-1.0), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, EdFunctionProperty,
    ::testing::Values(
        std::pair<const char*, EdFactory>{
            "step", [] { return std::make_unique<StepEdFunction>(2.0); }},
        std::pair<const char*, EdFactory>{
            "rayleigh",
            [] { return std::make_unique<RayleighEdFunction>(1.5); }},
        std::pair<const char*, EdFactory>{
            "nakagami_half",
            [] { return std::make_unique<NakagamiEdFunction>(0.5, 1.5); }},
        std::pair<const char*, EdFactory>{
            "nakagami_3",
            [] { return std::make_unique<NakagamiEdFunction>(3.0, 1.5); }},
        std::pair<const char*, EdFactory>{
            "rician_1",
            [] { return std::make_unique<RicianEdFunction>(1.0, 1.5); }},
        std::pair<const char*, EdFactory>{
            "rician_6",
            [] { return std::make_unique<RicianEdFunction>(6.0, 1.5); }}),
    [](const auto& name_info) { return std::string(name_info.param.first); });

}  // namespace
}  // namespace tveg::channel
