#include "channel/profile.hpp"

#include <gtest/gtest.h>

namespace tveg::channel {
namespace {

TEST(Profile, PiecewiseLookup) {
  PiecewiseConstantProfile p;
  p.add(0.0, 1.0);
  p.add(5.0, 2.0);
  p.add(10.0, 3.0);
  EXPECT_DOUBLE_EQ(p.at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.at(4.999), 1.0);
  EXPECT_DOUBLE_EQ(p.at(5.0), 2.0);
  EXPECT_DOUBLE_EQ(p.at(9.0), 2.0);
  EXPECT_DOUBLE_EQ(p.at(100.0), 3.0);
}

TEST(Profile, QueryBeforeFirstSampleReturnsFirstValue) {
  PiecewiseConstantProfile p;
  p.add(5.0, 7.0);
  EXPECT_DOUBLE_EQ(p.at(0.0), 7.0);
}

TEST(Profile, RequiresIncreasingTimes) {
  PiecewiseConstantProfile p;
  p.add(1.0, 1.0);
  EXPECT_THROW(p.add(1.0, 2.0), std::invalid_argument);
  EXPECT_THROW(p.add(0.5, 2.0), std::invalid_argument);
}

TEST(Profile, EmptyQueriesThrow) {
  PiecewiseConstantProfile p;
  EXPECT_TRUE(p.empty());
  EXPECT_THROW(p.at(0.0), std::invalid_argument);
  EXPECT_THROW(p.min_value(), std::invalid_argument);
}

TEST(Profile, BreakpointsExcludeFirstSample) {
  PiecewiseConstantProfile p;
  p.add(0.0, 1.0);
  p.add(3.0, 2.0);
  p.add(7.0, 3.0);
  EXPECT_EQ(p.breakpoints(), (std::vector<Time>{3.0, 7.0}));
}

TEST(Profile, MinMax) {
  PiecewiseConstantProfile p;
  p.add(0.0, 5.0);
  p.add(1.0, 2.0);
  p.add(2.0, 8.0);
  EXPECT_DOUBLE_EQ(p.min_value(), 2.0);
  EXPECT_DOUBLE_EQ(p.max_value(), 8.0);
}

}  // namespace
}  // namespace tveg::channel
