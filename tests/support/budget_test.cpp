// Resource-governance primitives: CancelToken/CancelSource semantics, the
// unified Budget poll (cancellation wins over timeout), the strided
// pollers, the MemBudget ledger, and the stall Watchdog.
#include "support/budget.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "support/mem_budget.hpp"
#include "support/watchdog.hpp"

namespace tveg::support {
namespace {

TEST(CancelToken, DefaultTokenIsInertAndFree) {
  const CancelToken token;
  EXPECT_FALSE(token.valid());
  EXPECT_FALSE(token.cancelled());
  EXPECT_NO_THROW(token.check("anywhere"));
  EXPECT_NO_THROW(token.note_poll());
}

TEST(CancelToken, SourceCancelReachesEveryToken) {
  const CancelSource source;
  const CancelToken a = source.token();
  const CancelToken b = source.token();
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(a.cancelled());
  EXPECT_NO_THROW(a.check("steiner"));

  source.request_cancel();
  EXPECT_TRUE(source.cancel_requested());
  EXPECT_TRUE(a.cancelled());
  EXPECT_TRUE(b.cancelled());
  EXPECT_THROW(b.check("steiner"), CancelledError);
  try {
    a.check("aux_dcs");
  } catch (const CancelledError& e) {
    EXPECT_NE(std::string(e.what()).find("aux_dcs"), std::string::npos);
  }
}

TEST(CancelToken, PollsCountAsHeartbeat) {
  const CancelSource source;
  const CancelToken token = source.token();
  EXPECT_EQ(source.polls(), 0u);
  token.check("a");
  token.check("a");
  token.note_poll();
  EXPECT_EQ(source.polls(), 3u);

  // Copies of the source share the same heartbeat (the watchdog holds one
  // while the solve holds another).
  const CancelSource copy = source;  // NOLINT(performance-*)
  EXPECT_EQ(copy.polls(), 3u);
  copy.request_cancel();
  EXPECT_TRUE(source.cancel_requested());
}

TEST(Budget, DefaultIsUnlimitedAndDeadlineConverts) {
  const Budget unlimited;
  EXPECT_TRUE(unlimited.unlimited());
  EXPECT_FALSE(unlimited.exhausted());
  EXPECT_NO_THROW(unlimited.check("x"));

  const Budget timed = Deadline::after_ms(0);
  EXPECT_FALSE(timed.unlimited());
  EXPECT_TRUE(timed.exhausted());
  EXPECT_THROW(timed.check("x"), TimeoutError);
}

TEST(Budget, CancellationWinsOverExpiredDeadline) {
  // A force-cancelled stalled solve must surface as cancelled even when its
  // deadline also lapsed while it was stuck.
  const CancelSource source;
  source.request_cancel();
  const Budget budget(Deadline::after_ms(0), source.token());
  EXPECT_TRUE(budget.exhausted());
  EXPECT_THROW(budget.check("x"), CancelledError);
}

TEST(DeadlinePoller, ReadsTheClockEveryStridePolls) {
  const Deadline expired = Deadline::after_ms(0);
  Deadline::Poller poller(expired, "loop", /*stride=*/4);
  // Three polls stay clock-free; the fourth hits the stride boundary.
  EXPECT_NO_THROW(poller.poll());
  EXPECT_NO_THROW(poller.poll());
  EXPECT_NO_THROW(poller.poll());
  EXPECT_THROW(poller.poll(), TimeoutError);
}

TEST(BudgetPoller, CancelIsObservedOnEveryPollRegardlessOfStride) {
  const CancelSource source;
  const Budget budget(Deadline(), source.token());
  Budget::Poller poller(budget, "loop", /*stride=*/1024);
  EXPECT_NO_THROW(poller.poll());
  source.request_cancel();
  // The very next poll throws — the stride only defers clock reads.
  EXPECT_THROW(poller.poll(), CancelledError);
}

TEST(BudgetPoller, ExpiredDeadlineSurfacesWithinOneStride) {
  const Budget budget(Deadline::after_ms(0));
  Budget::Poller poller(budget, "loop", /*stride=*/8);
  bool threw = false;
  for (int i = 0; i < 8 && !threw; ++i) {
    try {
      poller.poll();
    } catch (const TimeoutError&) {
      threw = true;
    }
  }
  EXPECT_TRUE(threw);
}

TEST(MemBudget, LedgerChargesReleasesAndClamps) {
  MemBudget mem(1000);
  EXPECT_EQ(mem.limit(), 1000u);
  EXPECT_EQ(mem.used(), 0u);
  EXPECT_FALSE(mem.over());

  mem.charge(600);
  EXPECT_EQ(mem.used(), 600u);
  EXPECT_FALSE(mem.over());
  mem.charge(600);
  EXPECT_TRUE(mem.over());

  mem.release(300);
  EXPECT_EQ(mem.used(), 900u);
  EXPECT_FALSE(mem.over());
  // Over-release (an eviction race) clamps at zero instead of wrapping.
  mem.release(5000);
  EXPECT_EQ(mem.used(), 0u);
}

TEST(MemBudget, UnlimitedLedgerTracksButNeverPressures) {
  MemBudget mem;
  mem.charge(1 << 30);
  EXPECT_FALSE(mem.over());
  EXPECT_EQ(mem.used(), std::size_t{1} << 30);
}

TEST(Watchdog, ForceCancelsASolveThatStopsPolling) {
  Watchdog dog(Watchdog::Options{.stall_ms = 20, .tick_ms = 5});
  const CancelSource source;
  const std::uint64_t handle = dog.watch(source);

  // The source never polls: the watchdog must declare a stall and cancel.
  for (int i = 0; i < 400 && !source.cancel_requested(); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(source.cancel_requested());
  EXPECT_GE(dog.stalls(), 1u);
  dog.unwatch(handle);
  dog.unwatch(handle);  // idempotent
}

TEST(Watchdog, DoesNotCancelBeforeTheStallWindow) {
  // A generous window: unwatching after a few heartbeats can never race the
  // stall declaration.
  Watchdog dog(Watchdog::Options{.stall_ms = 60000});
  const CancelSource source;
  {
    const Watchdog::Scope scope(dog, source);
    const CancelToken token = source.token();
    for (int i = 0; i < 5; ++i) {
      token.check("solve");
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_FALSE(source.cancel_requested());
  }
  EXPECT_EQ(dog.stalls(), 0u);
}

TEST(Watchdog, FrequentHeartbeatsAreNeverAStall) {
  // Explicit tick: the monitor samples often, the solve polls much faster
  // than the (scheduling-noise-proof) one-second window.
  Watchdog dog(Watchdog::Options{.stall_ms = 1000, .tick_ms = 20});
  const CancelSource source;
  const Watchdog::Scope scope(dog, source);
  const CancelToken token = source.token();
  for (int i = 0; i < 20; ++i) {
    token.check("solve");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_FALSE(source.cancel_requested());
  EXPECT_EQ(dog.stalls(), 0u);
}

}  // namespace
}  // namespace tveg::support
