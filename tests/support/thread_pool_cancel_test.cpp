// Cancellable parallel_for: drain-on-cancel without leaking tasks, the
// deterministic lowest-chunk-index exception rule (the multi-chunk
// propagation regression), and byte-identity on the uncancelled path.
#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/cancel.hpp"

namespace tveg::support {
namespace {

TEST(ThreadPoolCancel, FirstExceptionIsDeterministicAcrossChunks) {
  // Regression: with every index throwing, several chunks race their
  // exceptions into the pool; the winner must always be the lowest-index
  // chunk's (whose first index is 0), never whichever chunk lost the race
  // last. Before the fix the surviving exception was scheduling-dependent.
  ThreadPool pool(8);
  for (int round = 0; round < 50; ++round) {
    std::string what;
    try {
      pool.parallel_for(0, 4096, [](std::size_t i) {
        throw std::runtime_error("index " + std::to_string(i));
      });
      FAIL() << "parallel_for must rethrow";
    } catch (const std::runtime_error& e) {
      what = e.what();
    }
    EXPECT_EQ(what, "index 0") << "round " << round;
  }
}

TEST(ThreadPoolCancel, MidRunCancelDrainsAndThrows) {
  ThreadPool pool(4);
  const CancelSource source;
  std::atomic<std::size_t> executed{0};
  bool cancelled = false;
  try {
    pool.parallel_for(
        0, 1u << 20,
        [&](std::size_t) {
          // The body itself trips the source a few thousand indices in, so
          // the cancel lands deterministically mid-run.
          if (executed.fetch_add(1, std::memory_order_relaxed) == 4096)
            source.request_cancel();
        },
        source.token());
  } catch (const CancelledError&) {
    cancelled = true;
  }
  EXPECT_TRUE(cancelled);
  // The range was cut short: the chunks drained instead of finishing.
  EXPECT_LT(executed.load(), std::size_t{1} << 20);
  EXPECT_GE(executed.load(), 4096u);

  // No task is still running and the pool is not wedged: a fresh loop on
  // the same pool completes normally.
  std::atomic<std::size_t> after{0};
  pool.parallel_for(0, 1000, [&](std::size_t) { ++after; });
  EXPECT_EQ(after.load(), 1000u);
}

TEST(ThreadPoolCancel, PreCancelledTokenRunsNothing) {
  ThreadPool pool(4);
  const CancelSource source;
  source.request_cancel();
  std::atomic<std::size_t> executed{0};
  EXPECT_THROW(pool.parallel_for(
                   0, 1000, [&](std::size_t) { ++executed; }, source.token()),
               CancelledError);
  EXPECT_EQ(executed.load(), 0u);
}

TEST(ThreadPoolCancel, BodyExceptionBeatsConcurrentCancel) {
  // A body failure and a cancellation can race; the body exception is the
  // more informative outcome and must win.
  ThreadPool pool(4);
  const CancelSource source;
  try {
    pool.parallel_for(
        0, 1 << 16,
        [&](std::size_t i) {
          if (i == 0) {
            source.request_cancel();
            throw std::logic_error("body failure");
          }
        },
        source.token());
    FAIL() << "parallel_for must rethrow";
  } catch (const std::logic_error& e) {
    EXPECT_STREQ(e.what(), "body failure");
  }
}

TEST(ThreadPoolCancel, UncancelledPathIsByteIdenticalToPlainOverload) {
  ThreadPool pool(8);
  const CancelSource source;  // valid token, never fired
  const std::size_t n = 50000;
  std::vector<double> plain(n), tokened(n);
  pool.parallel_for(0, n, [&](std::size_t i) {
    plain[i] = static_cast<double>(i) * 1.5 + 1.0 / (static_cast<double>(i) + 1.0);
  });
  pool.parallel_for(
      0, n,
      [&](std::size_t i) {
        tokened[i] =
            static_cast<double>(i) * 1.5 + 1.0 / (static_cast<double>(i) + 1.0);
      },
      source.token());
  EXPECT_TRUE(plain == tokened);
  // Every index polled the token exactly once.
  EXPECT_EQ(source.polls(), 0u);  // drain checks are relaxed loads, not polls
}

TEST(ThreadPoolCancel, StoppedPoolStillHonoursCancellation) {
  ThreadPool pool(2);
  pool.shutdown();
  const CancelSource source;
  source.request_cancel();
  std::atomic<std::size_t> executed{0};
  // The inline fallback must observe the token too, not run the whole range.
  EXPECT_THROW(pool.parallel_for(
                   0, 1000, [&](std::size_t) { ++executed; }, source.token()),
               CancelledError);
  EXPECT_EQ(executed.load(), 0u);
}

TEST(ThreadPoolCancel, FreeFunctionOverloadForwards) {
  const CancelSource source;
  std::atomic<std::size_t> executed{0};
  parallel_for(0, 100, [&](std::size_t) { ++executed; }, source.token());
  EXPECT_EQ(executed.load(), 100u);
  source.request_cancel();
  EXPECT_THROW(parallel_for(
                   0, 100, [&](std::size_t) { ++executed; }, source.token()),
               CancelledError);
  EXPECT_EQ(executed.load(), 100u);
}

}  // namespace
}  // namespace tveg::support
