#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tveg::support {
namespace {

TEST(RunningStat, BasicMoments) {
  RunningStat s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 15.0);
}

TEST(RunningStat, EmptyThrowsOnMean) {
  RunningStat s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW(s.mean(), std::invalid_argument);
  EXPECT_THROW(s.min(), std::invalid_argument);
}

TEST(RunningStat, SingleSampleHasZeroVariance) {
  RunningStat s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, MergeEqualsSequential) {
  RunningStat all, a, b;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmptyIsIdentity) {
  RunningStat a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);

  RunningStat b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(SampleSet, QuantilesExact) {
  SampleSet s;
  for (double x : {4.0, 1.0, 3.0, 2.0, 5.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
}

TEST(SampleSet, QuantileInterpolates) {
  SampleSet s;
  s.add(0.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.1), 1.0);
}

TEST(SampleSet, MeanAndStddev) {
  SampleSet s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(SampleSet, EmptyThrows) {
  SampleSet s;
  EXPECT_THROW(s.mean(), std::invalid_argument);
  EXPECT_THROW(s.quantile(0.5), std::invalid_argument);
}

TEST(SampleSet, QuantileRejectsOutOfRange) {
  SampleSet s;
  s.add(1.0);
  EXPECT_THROW(s.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(s.quantile(1.1), std::invalid_argument);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.9);   // bin 4
  h.add(-3.0);  // clamps to bin 0
  h.add(42.0);  // clamps to bin 4
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, BinCenters) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(4), 9.0);
}

TEST(Histogram, CcdfMonotone) {
  Histogram h(0.0, 1.0, 10);
  for (int i = 0; i < 100; ++i) h.add(i / 100.0);
  const auto ccdf = h.ccdf();
  EXPECT_DOUBLE_EQ(ccdf.front(), 1.0);
  for (std::size_t i = 1; i < ccdf.size(); ++i) EXPECT_LE(ccdf[i], ccdf[i - 1]);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 5), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace tveg::support
