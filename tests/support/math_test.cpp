#include "support/math.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tveg::support {
namespace {

TEST(Math, AlmostEqualAbsolute) {
  EXPECT_TRUE(almost_equal(1.0, 1.0 + 1e-10));
  EXPECT_FALSE(almost_equal(1.0, 1.001));
}

TEST(Math, AlmostEqualRelative) {
  EXPECT_TRUE(almost_equal(1e12, 1e12 * (1 + 1e-10)));
  EXPECT_FALSE(almost_equal(1e12, 1.001e12));
}

TEST(Math, AlmostLeq) {
  EXPECT_TRUE(almost_leq(1.0, 2.0));
  EXPECT_TRUE(almost_leq(1.0 + 1e-12, 1.0));
  EXPECT_FALSE(almost_leq(1.1, 1.0));
}

TEST(Math, DbConversionRoundTrip) {
  EXPECT_NEAR(db_to_linear(0.0), 1.0, 1e-12);
  EXPECT_NEAR(db_to_linear(10.0), 10.0, 1e-12);
  EXPECT_NEAR(db_to_linear(3.0), 1.9952623, 1e-6);
  EXPECT_NEAR(linear_to_db(db_to_linear(25.9)), 25.9, 1e-9);
}

TEST(Math, PaperDecodingThreshold) {
  // γ_th = 25.9 dB ≈ 389 in linear scale (Sec. VII parameters).
  EXPECT_NEAR(db_to_linear(25.9), 389.0, 1.0);
}

TEST(Math, SafeLogFloorsAtTinyValues) {
  EXPECT_DOUBLE_EQ(safe_log(1.0), 0.0);
  EXPECT_TRUE(std::isfinite(safe_log(0.0)));
  EXPECT_LT(safe_log(0.0), -600.0);
}

TEST(Math, InfinityConstant) {
  EXPECT_TRUE(std::isinf(kInf));
  EXPECT_GT(kInf, 1e308);
}

}  // namespace
}  // namespace tveg::support
