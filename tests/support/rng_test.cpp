#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace tveg::support {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(3);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[rng.uniform_int(std::uint64_t{10})];
  for (int c : counts) EXPECT_GT(c, 700);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(std::int64_t{-2}, std::int64_t{2});
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(std::uint64_t{0}), std::invalid_argument);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(17);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(3.0, 1.5), 3.0);
}

TEST(Rng, ParetoMeanMatchesTheory) {
  // mean = shape*scale/(shape-1) for shape > 1; use shape 3 for fast
  // convergence.
  Rng rng(23);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.pareto(2.0, 3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, NormalMoments) {
  Rng rng(29);
  double sum = 0, sum2 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(1.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.03);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, LognormalIsExpOfNormal) {
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
}

TEST(Rng, SplitStreamsAreIndependentish) {
  Rng parent(37);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (parent() == child()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(StreamSeed, DistinctAcrossSeedStreamGrid) {
  // Per-trial stream seeds must be distinct across a (seed, stream) grid —
  // the property Monte-Carlo trials rely on for independent streams.
  std::vector<std::uint64_t> seen;
  for (std::uint64_t seed = 0; seed < 64; ++seed)
    for (std::uint64_t stream = 0; stream < 64; ++stream)
      seen.push_back(stream_seed(seed, stream));
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end())
      << "collision in the 64x64 (seed, stream) grid";
}

TEST(StreamSeed, FixesXorLinearCollisionOfOldScheme) {
  // The pre-fix derivation `seed ^ (kGolden * (trial + 1))` was XOR-linear:
  // two runs whose seeds differ by kGolden*d collide after shifting the
  // trial index by d, replaying entire trial streams across experiments.
  constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
  const std::uint64_t seed_a = 42;
  const std::uint64_t seed_b = seed_a ^ (kGolden * 1) ^ (kGolden * 3);
  // Old scheme: trial 0 of run A == trial 2 of run B.
  EXPECT_EQ(seed_a ^ (kGolden * 1), seed_b ^ (kGolden * 3));
  // New scheme: no such alignment.
  EXPECT_NE(stream_seed(seed_a, 0), stream_seed(seed_b, 2));
}

TEST(StreamSeed, StreamsDecorrelated) {
  // Adjacent streams from one seed should look unrelated: generators seeded
  // from them must not emit matching outputs.
  Rng a(stream_seed(7, 0));
  Rng b(stream_seed(7, 1));
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(41);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, IndexWithinBounds) {
  Rng rng(43);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.index(7), 7u);
  EXPECT_THROW(rng.index(0), std::invalid_argument);
}

TEST(StreamSeed, DeterministicForSameInputs) {
  EXPECT_EQ(stream_seed(42, 7), stream_seed(42, 7));
  EXPECT_EQ(stream_seed(0, 0), stream_seed(0, 0));
}

TEST(StreamSeed, DistinctStreamsAndSeedsGiveDistinctValues) {
  // 1024 (seed, stream) combinations must not collide: a collision would
  // silently correlate two "independent" experiment streams.
  std::vector<std::uint64_t> seen;
  for (std::uint64_t seed = 0; seed < 32; ++seed)
    for (std::uint64_t stream = 0; stream < 32; ++stream)
      seen.push_back(stream_seed(seed, stream));
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

TEST(StreamSeed, AdjacentStreamsAreStatisticallyIndependent) {
  // Rngs seeded from adjacent streams of the same base seed must not
  // produce correlated output: count exact collisions and matching
  // high bits across the first 256 draws.
  Rng a(stream_seed(99, 0)), b(stream_seed(99, 1));
  int equal = 0, same_top_byte = 0;
  for (int i = 0; i < 256; ++i) {
    const std::uint64_t x = a(), y = b();
    if (x == y) ++equal;
    if ((x >> 56) == (y >> 56)) ++same_top_byte;
  }
  EXPECT_EQ(equal, 0);
  EXPECT_LT(same_top_byte, 16);  // expectation 1, binomial tail
}

}  // namespace
}  // namespace tveg::support
