#include "support/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace tveg::support {
namespace {

TEST(Table, AlignedTextOutput) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("|  name | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha |     1 |"), std::string::npos);
  EXPECT_NE(out.find("|     b |    22 |"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
}

TEST(Table, RowCount) {
  Table t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

}  // namespace
}  // namespace tveg::support
