#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace tveg::support {
namespace {

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, [&](std::size_t) { ++calls; });
  pool.parallel_for(7, 3, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, OffsetRange) {
  ThreadPool pool(3);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(10, 20, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), std::size_t{145});  // 10+11+...+19
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [&](std::size_t i) {
                                   if (i == 37)
                                     throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, SingleThreadStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.parallel_for(0, 50, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(2);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(0, 100, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 100);
  }
}

TEST(ThreadPool, GlobalPoolWorks) {
  std::atomic<int> count{0};
  parallel_for(0, 64, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, DefaultThreadCountPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesExceptionToWaitingCaller) {
  // A throwing task must neither terminate the process nor hang the
  // caller: the exception travels through the future to whoever waits.
  ThreadPool pool(2);
  auto future = pool.submit(
      []() -> int { throw std::runtime_error("submitted boom"); });
  try {
    future.get();
    FAIL() << "expected the submitted exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "submitted boom");
  }
}

TEST(ThreadPool, PoolUsableAfterSubmittedException) {
  ThreadPool pool(2);
  auto bad = pool.submit([]() -> int { throw std::logic_error("first"); });
  EXPECT_THROW(bad.get(), std::logic_error);

  // Workers must survive the throw: both futures and parallel_for still run.
  auto good = pool.submit([] { return 7; });
  EXPECT_EQ(good.get(), 7);
  std::atomic<int> count{0};
  pool.parallel_for(0, 100, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ManyConcurrentSubmitsAllComplete) {
  ThreadPool pool(4);
  std::vector<std::future<std::size_t>> futures;
  futures.reserve(200);
  for (std::size_t i = 0; i < 200; ++i)
    futures.push_back(pool.submit([i] { return i * i; }));
  for (std::size_t i = 0; i < 200; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

}  // namespace
}  // namespace tveg::support
