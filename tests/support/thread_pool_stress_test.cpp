// Contention-provoking stress tests for ThreadPool, written to run under
// TSan (scripts/ci.sh tsan stage): they deliberately overlap submit,
// parallel_for and shutdown from many threads so the sanitizer can see the
// synchronization edges the unit tests never exercise.
#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

namespace tveg::support {
namespace {

TEST(ThreadPoolStress, ManyProducersManyConsumers) {
  // N producer threads × M pool workers; every submitted task must run
  // exactly once and every future must resolve.
  ThreadPool pool(4);
  static constexpr std::size_t kProducers = 8;
  static constexpr std::size_t kTasksPerProducer = 100;
  std::atomic<std::size_t> executed{0};
  std::vector<std::vector<std::future<std::size_t>>> futures(kProducers);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      futures[p].reserve(kTasksPerProducer);
      for (std::size_t i = 0; i < kTasksPerProducer; ++i)
        futures[p].push_back(pool.submit([&executed, p, i] {
          executed.fetch_add(1, std::memory_order_relaxed);
          return p * kTasksPerProducer + i;
        }));
    });
  }
  for (auto& t : producers) t.join();
  for (std::size_t p = 0; p < kProducers; ++p)
    for (std::size_t i = 0; i < kTasksPerProducer; ++i)
      EXPECT_EQ(futures[p][i].get(), p * kTasksPerProducer + i);
  EXPECT_EQ(executed.load(), kProducers * kTasksPerProducer);
}

TEST(ThreadPoolStress, SubmitRacingShutdownEitherRunsOrThrows) {
  // Producers hammer submit while the owner shuts the pool down. Each
  // submit must either win (task runs, future resolves) or lose with a
  // synchronous std::runtime_error — never a wedged future.
  ThreadPool pool(3);
  static constexpr std::size_t kProducers = 4;
  std::atomic<std::size_t> accepted{0};
  std::atomic<std::size_t> rejected{0};
  std::atomic<std::size_t> executed{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      std::vector<std::future<int>> mine;
      for (;;) {
        try {
          mine.push_back(pool.submit([&executed] {
            executed.fetch_add(1, std::memory_order_relaxed);
            return 1;
          }));
          accepted.fetch_add(1, std::memory_order_relaxed);
        } catch (const std::runtime_error&) {
          rejected.fetch_add(1, std::memory_order_relaxed);
          break;
        }
      }
      for (auto& f : mine) EXPECT_EQ(f.get(), 1);  // none may wedge
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  pool.shutdown();
  for (auto& t : producers) t.join();
  EXPECT_EQ(rejected.load(), kProducers);  // every producer saw the stop
  EXPECT_EQ(executed.load(), accepted.load());  // accepted ⇒ ran
}

TEST(ThreadPoolStress, ShutdownIsIdempotentAndSubmitAfterThrows) {
  ThreadPool pool(2);
  auto before = pool.submit([] { return 11; });
  EXPECT_EQ(before.get(), 11);
  pool.shutdown();
  pool.shutdown();  // second call is a no-op, not a crash
  EXPECT_THROW(pool.submit([] { return 0; }), std::runtime_error);
  EXPECT_GE(pool.thread_count(), 2u);  // construction-time count survives
}

TEST(ThreadPoolStress, ParallelForAfterShutdownDegradesToInline) {
  ThreadPool pool(3);
  pool.shutdown();
  std::size_t count = 0;  // plain: the inline path is single-threaded
  pool.parallel_for(0, 100, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 100u);
}

TEST(ThreadPoolStress, ExceptionsUnderContention) {
  // Half the tasks throw while all producers race; every future must carry
  // either its value or its exception, and the pool must stay usable.
  ThreadPool pool(4);
  static constexpr std::size_t kProducers = 4;
  static constexpr std::size_t kTasksPerProducer = 50;
  std::vector<std::vector<std::future<std::size_t>>> futures(kProducers);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = 0; i < kTasksPerProducer; ++i)
        futures[p].push_back(pool.submit([i]() -> std::size_t {
          if (i % 2 == 1) throw std::invalid_argument("odd task");
          return i;
        }));
    });
  }
  for (auto& t : producers) t.join();
  for (std::size_t p = 0; p < kProducers; ++p)
    for (std::size_t i = 0; i < kTasksPerProducer; ++i) {
      if (i % 2 == 1) {
        EXPECT_THROW(futures[p][i].get(), std::invalid_argument);
      } else {
        EXPECT_EQ(futures[p][i].get(), i);
      }
    }
  std::atomic<int> alive{0};
  pool.parallel_for(0, 64, [&](std::size_t) { alive.fetch_add(1); });
  EXPECT_EQ(alive.load(), 64);
}

TEST(ThreadPoolStress, ConcurrentParallelForCallers) {
  // Several threads drive parallel_for on one pool simultaneously, many
  // rounds each — this hammers the completion signalling whose
  // use-after-free race the done_mutex-guarded decrement fixes.
  ThreadPool pool(4);
  static constexpr std::size_t kCallers = 3;
  static constexpr std::size_t kRounds = 40;
  static constexpr std::size_t kRange = 64;
  std::vector<std::atomic<std::size_t>> sums(kCallers);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (std::size_t round = 0; round < kRounds; ++round)
        pool.parallel_for(0, kRange, [&sums, c](std::size_t i) {
          sums[c].fetch_add(i, std::memory_order_relaxed);
        });
    });
  }
  for (auto& t : callers) t.join();
  static constexpr std::size_t kRangeSum = kRange * (kRange - 1) / 2;
  for (std::size_t c = 0; c < kCallers; ++c)
    EXPECT_EQ(sums[c].load(), kRounds * kRangeSum);
}

TEST(ThreadPoolStress, ThrowingParallelForBesideLiveSubmits) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  futures.reserve(100);
  for (int i = 0; i < 100; ++i)
    futures.push_back(pool.submit([i] { return i; }));
  EXPECT_THROW(pool.parallel_for(0, 256,
                                 [](std::size_t i) {
                                   if (i == 129)
                                     throw std::runtime_error("chunk boom");
                                 }),
               std::runtime_error);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i);
}

}  // namespace
}  // namespace tveg::support
