#include "trace/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace tveg::trace {
namespace {

TEST(TraceIo, RoundTrip) {
  ContactTrace t(3, 50.0);
  t.add({0, 1, 1.0, 2.5, 3.25});
  t.add({1, 2, 10.0, 20.0, 7.0});
  t.sort();

  std::stringstream ss;
  write_trace(ss, t);
  const ContactTrace back = read_trace(ss);

  EXPECT_EQ(back.node_count(), 3);
  EXPECT_DOUBLE_EQ(back.horizon(), 50.0);
  ASSERT_EQ(back.contact_count(), 2u);
  EXPECT_EQ(back.contacts(), t.contacts());
}

TEST(TraceIo, ReadsHeaderlessCrawdadFormat) {
  std::stringstream ss("0 1 5 10\n1 2 8 12\n");
  const ContactTrace t = read_trace(ss, 3, 20.0, 4.0);
  EXPECT_EQ(t.node_count(), 3);
  EXPECT_DOUBLE_EQ(t.horizon(), 20.0);
  ASSERT_EQ(t.contact_count(), 2u);
  EXPECT_DOUBLE_EQ(t.contacts()[0].distance, 4.0);  // default applied
}

TEST(TraceIo, InfersNodesAndHorizonWhenAbsent) {
  std::stringstream ss("0 1 5 10\n2 3 8 12\n");
  const ContactTrace t = read_trace(ss);
  EXPECT_EQ(t.node_count(), 4);
  EXPECT_DOUBLE_EQ(t.horizon(), 12.0);
}

TEST(TraceIo, SkipsCommentsAndBlankLines) {
  std::stringstream ss("# a comment\n\n0 1 5 10 2.5\n");
  const ContactTrace t = read_trace(ss);
  ASSERT_EQ(t.contact_count(), 1u);
  EXPECT_DOUBLE_EQ(t.contacts()[0].distance, 2.5);
}

TEST(TraceIo, ClipsContactsBeyondDeclaredHorizon) {
  std::stringstream ss("# tveg-trace nodes=2 horizon=8\n0 1 5 10\n");
  const ContactTrace t = read_trace(ss);
  ASSERT_EQ(t.contact_count(), 1u);
  EXPECT_DOUBLE_EQ(t.contacts()[0].end, 8.0);
}

TEST(TraceIo, MalformedLineThrows) {
  std::stringstream ss("0 1 oops 10\n");
  EXPECT_THROW(read_trace(ss), std::invalid_argument);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(read_trace_file("/nonexistent/path.trace"),
               std::invalid_argument);
}

TEST(TraceIo, FileRoundTrip) {
  ContactTrace t(2, 10.0);
  t.add({0, 1, 1.0, 2.0, 1.5});
  const std::string path = ::testing::TempDir() + "/tveg_io_test.trace";
  write_trace_file(path, t);
  const ContactTrace back = read_trace_file(path);
  EXPECT_EQ(back.contacts(), t.contacts());
}

}  // namespace
}  // namespace tveg::trace
