#include "trace/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace tveg::trace {
namespace {

TEST(TraceIo, RoundTrip) {
  ContactTrace t(3, 50.0);
  t.add({0, 1, 1.0, 2.5, 3.25});
  t.add({1, 2, 10.0, 20.0, 7.0});
  t.sort();

  std::stringstream ss;
  write_trace(ss, t);
  const ContactTrace back = read_trace(ss);

  EXPECT_EQ(back.node_count(), 3);
  EXPECT_DOUBLE_EQ(back.horizon(), 50.0);
  ASSERT_EQ(back.contact_count(), 2u);
  EXPECT_EQ(back.contacts(), t.contacts());
}

TEST(TraceIo, ReadsHeaderlessCrawdadFormat) {
  std::stringstream ss("0 1 5 10\n1 2 8 12\n");
  const ContactTrace t = read_trace(ss, 3, 20.0, 4.0);
  EXPECT_EQ(t.node_count(), 3);
  EXPECT_DOUBLE_EQ(t.horizon(), 20.0);
  ASSERT_EQ(t.contact_count(), 2u);
  EXPECT_DOUBLE_EQ(t.contacts()[0].distance, 4.0);  // default applied
}

TEST(TraceIo, InfersNodesAndHorizonWhenAbsent) {
  std::stringstream ss("0 1 5 10\n2 3 8 12\n");
  const ContactTrace t = read_trace(ss);
  EXPECT_EQ(t.node_count(), 4);
  EXPECT_DOUBLE_EQ(t.horizon(), 12.0);
}

TEST(TraceIo, SkipsCommentsAndBlankLines) {
  std::stringstream ss("# a comment\n\n0 1 5 10 2.5\n");
  const ContactTrace t = read_trace(ss);
  ASSERT_EQ(t.contact_count(), 1u);
  EXPECT_DOUBLE_EQ(t.contacts()[0].distance, 2.5);
}

TEST(TraceIo, ClipsContactsBeyondDeclaredHorizon) {
  std::stringstream ss("# tveg-trace nodes=2 horizon=8\n0 1 5 10\n");
  const ContactTrace t = read_trace(ss);
  ASSERT_EQ(t.contact_count(), 1u);
  EXPECT_DOUBLE_EQ(t.contacts()[0].end, 8.0);
}

TEST(TraceIo, MalformedLineThrows) {
  std::stringstream ss("0 1 oops 10\n");
  EXPECT_THROW(read_trace(ss), std::invalid_argument);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(read_trace_file("/nonexistent/path.trace"),
               std::invalid_argument);
}

TEST(TraceIo, ParseReportsLineNumbers) {
  std::stringstream ss("# comment\n0 1 5 10\n0 1 bogus 30\n");
  const auto result = parse_trace(ss);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, support::ErrorCode::kParse);
  EXPECT_EQ(result.error().line, 3);
}

TEST(TraceIo, ParseRejectsOutOfRangeNodeIds) {
  // The pre-Result parser silently *dropped* contacts whose endpoints fell
  // outside the declared node count; now they are a structured error.
  std::stringstream ss("# tveg-trace nodes=2 horizon=20\n0 4 5 10\n");
  const auto result = parse_trace(ss);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, support::ErrorCode::kInvalidInput);
  EXPECT_EQ(result.error().line, 2);
}

TEST(TraceIo, ParseRejectsOverlappingPairIntervals) {
  std::stringstream ss("0 1 0 10\n1 0 8 12\n");
  const auto result = parse_trace(ss);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, support::ErrorCode::kInvalidInput);
  EXPECT_EQ(result.error().line, 2);
}

TEST(TraceIo, TouchingPairIntervalsAreLegal) {
  std::stringstream ss("0 1 0 10\n0 1 10 15\n");
  const auto result = parse_trace(ss);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_EQ(result.value().contact_count(), 2u);
}

TEST(TraceIo, ParseSucceedsOnWellFormedInput) {
  std::stringstream ss("# tveg-trace nodes=3 horizon=50\n0 1 5 10 2.0\n");
  const auto result = parse_trace(ss);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().node_count(), 3);
}

TEST(TraceIo, FileRoundTrip) {
  ContactTrace t(2, 10.0);
  t.add({0, 1, 1.0, 2.0, 1.5});
  const std::string path = ::testing::TempDir() + "/tveg_io_test.trace";
  write_trace_file(path, t);
  const ContactTrace back = read_trace_file(path);
  EXPECT_EQ(back.contacts(), t.contacts());
}

}  // namespace
}  // namespace tveg::trace
