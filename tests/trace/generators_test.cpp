#include "trace/generators.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "support/rng.hpp"
#include "support/stats.hpp"

namespace tveg::trace {
namespace {

TEST(HaggleLike, DeterministicForSeed) {
  HaggleLikeConfig cfg;
  cfg.nodes = 10;
  cfg.horizon = 5000;
  cfg.activation_ramp_end = 2000;
  cfg.seed = 9;
  const auto a = generate_haggle_like(cfg);
  const auto b = generate_haggle_like(cfg);
  EXPECT_EQ(a.contacts(), b.contacts());
  cfg.seed = 10;
  const auto c = generate_haggle_like(cfg);
  EXPECT_NE(a.contacts(), c.contacts());
}

TEST(HaggleLike, RespectsBounds) {
  HaggleLikeConfig cfg;
  cfg.nodes = 15;
  cfg.horizon = 8000;
  cfg.activation_ramp_end = 3000;
  const auto t = generate_haggle_like(cfg);
  EXPECT_EQ(t.node_count(), 15);
  for (const auto& c : t.contacts()) {
    EXPECT_GE(c.start, 0.0);
    EXPECT_LE(c.end, cfg.horizon);
    EXPECT_GE(c.distance, cfg.min_distance);
    EXPECT_LE(c.distance, cfg.max_distance);
    EXPECT_LE(c.end - c.start, cfg.max_duration + 1e-9);
  }
}

TEST(HaggleLike, InterContactGapsRespectParetoScale) {
  HaggleLikeConfig cfg;
  cfg.nodes = 12;
  cfg.horizon = 17000;
  const auto t = generate_haggle_like(cfg);
  for (Time gap : t.inter_contact_times())
    EXPECT_GE(gap, cfg.pareto_scale - 1e-9);
}

TEST(HaggleLike, DegreeRampsUpThenPlateaus) {
  HaggleLikeConfig cfg;
  cfg.nodes = 20;
  cfg.horizon = 17000;
  cfg.activation_ramp_end = 8000;
  cfg.seed = 4;
  const auto t = generate_haggle_like(cfg);
  // Average degree over the early window must be clearly below the late
  // window (the Fig. 7 warm-up shape).
  auto window_degree = [&](Time lo, Time hi) {
    support::RunningStat s;
    for (Time x = lo; x < hi; x += 100) s.add(t.average_degree(x));
    return s.mean();
  };
  const double early = window_degree(0, 4000);
  const double late = window_degree(9000, 16000);
  EXPECT_LT(early, 0.7 * late);
}

TEST(HaggleLike, ValidatesConfig) {
  HaggleLikeConfig cfg;
  cfg.pair_probability = 0.0;
  EXPECT_THROW(generate_haggle_like(cfg), std::invalid_argument);
  cfg = {};
  cfg.activation_ramp_end = cfg.horizon + 1;
  EXPECT_THROW(generate_haggle_like(cfg), std::invalid_argument);
}

TEST(RandomWaypoint, ContactsCarryRealDistances) {
  RandomWaypointConfig cfg;
  cfg.nodes = 8;
  cfg.horizon = 600;
  cfg.seed = 2;
  const auto t = generate_random_waypoint(cfg);
  for (const auto& c : t.contacts()) {
    EXPECT_GT(c.distance, 0.0);
    EXPECT_LE(c.distance, cfg.comm_range + cfg.distance_quantum);
    EXPECT_GE(c.start, 0.0);
    EXPECT_LE(c.end, cfg.horizon);
  }
}

TEST(RandomWaypoint, Deterministic) {
  RandomWaypointConfig cfg;
  cfg.nodes = 6;
  cfg.horizon = 400;
  cfg.seed = 5;
  EXPECT_EQ(generate_random_waypoint(cfg).contacts(),
            generate_random_waypoint(cfg).contacts());
}

TEST(RandomWaypoint, DistanceChangesSplitContacts) {
  RandomWaypointConfig cfg;
  cfg.nodes = 10;
  cfg.horizon = 1200;
  cfg.area = 40.0;  // dense arena: many contacts
  cfg.seed = 3;
  const auto t = generate_random_waypoint(cfg);
  ASSERT_GT(t.contact_count(), 0u);
  // Some same-pair contacts must abut exactly (distance-bucket splits).
  bool found_abutting = false;
  const auto& cs = t.contacts();
  for (std::size_t i = 0; i < cs.size() && !found_abutting; ++i)
    for (std::size_t j = 0; j < cs.size(); ++j)
      if (i != j && cs[i].a == cs[j].a && cs[i].b == cs[j].b &&
          std::fabs(cs[i].end - cs[j].start) < 1e-9 &&
          cs[i].distance != cs[j].distance) {
        found_abutting = true;
        break;
      }
  EXPECT_TRUE(found_abutting);
}

TEST(DutyCycle, AwakeWindowsOnly) {
  DutyCycleConfig cfg;
  cfg.nodes = 12;
  cfg.horizon = 1000;
  cfg.period = 100;
  cfg.duty = 0.25;
  cfg.seed = 7;
  const auto t = generate_duty_cycle(cfg);
  // No single contact may exceed the awake window length.
  for (const auto& c : t.contacts())
    EXPECT_LE(c.end - c.start, cfg.duty * cfg.period + 1e-9);
}

TEST(DutyCycle, StaticDistancesPerPair) {
  DutyCycleConfig cfg;
  cfg.nodes = 10;
  cfg.horizon = 600;
  cfg.seed = 11;
  const auto t = generate_duty_cycle(cfg);
  // All contacts of one pair share the same (static) distance.
  for (std::size_t i = 0; i < t.contact_count(); ++i)
    for (std::size_t j = i + 1; j < t.contact_count(); ++j) {
      const auto& a = t.contacts()[i];
      const auto& b = t.contacts()[j];
      if (a.a == b.a && a.b == b.b) {
        EXPECT_DOUBLE_EQ(a.distance, b.distance);
      }
    }
}

TEST(Snapshots, SlotAligned) {
  SnapshotConfig cfg;
  cfg.nodes = 8;
  cfg.slot = 50;
  cfg.horizon = 500;
  cfg.seed = 13;
  const auto t = generate_snapshots(cfg);
  ASSERT_GT(t.contact_count(), 0u);
  for (const auto& c : t.contacts()) {
    EXPECT_NEAR(std::fmod(c.start, cfg.slot), 0.0, 1e-9);
    EXPECT_LE(c.end - c.start, cfg.slot + 1e-9);
  }
}

TEST(Snapshots, DensityTracksP) {
  SnapshotConfig cfg;
  cfg.nodes = 10;
  cfg.slot = 10;
  cfg.horizon = 2000;
  cfg.p = 0.2;
  const auto t = generate_snapshots(cfg);
  const double slots = cfg.horizon / cfg.slot;
  const double pairs = 45.0;
  const double expected = slots * pairs * cfg.p;
  EXPECT_NEAR(static_cast<double>(t.contact_count()) / expected, 1.0, 0.1);
}

// The property harness (tests/prop) leans on these two guarantees: the
// instance a seed names is stable across runs, and instances drawn from
// different support::stream_seed streams are genuinely different.
TEST(Snapshots, DeterministicForSeed) {
  SnapshotConfig cfg;
  cfg.nodes = 8;
  cfg.slot = 20;
  cfg.horizon = 200;
  cfg.seed = 123;
  const auto a = generate_snapshots(cfg);
  const auto b = generate_snapshots(cfg);
  EXPECT_EQ(a.contacts(), b.contacts());
}

TEST(Snapshots, DistinctStreamSeedsGiveDistinctTraces) {
  SnapshotConfig cfg;
  cfg.nodes = 8;
  cfg.slot = 20;
  cfg.horizon = 200;
  int identical = 0;
  for (std::uint64_t i = 0; i + 1 < 20; ++i) {
    cfg.seed = support::stream_seed(7, i);
    const auto a = generate_snapshots(cfg);
    cfg.seed = support::stream_seed(7, i + 1);
    const auto b = generate_snapshots(cfg);
    if (a.contacts() == b.contacts()) ++identical;
  }
  EXPECT_EQ(identical, 0);
}

}  // namespace
}  // namespace tveg::trace
