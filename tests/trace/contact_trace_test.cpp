#include "trace/contact_trace.hpp"

#include <gtest/gtest.h>

namespace tveg::trace {
namespace {

ContactTrace small_trace() {
  ContactTrace t(4, 100.0);
  t.add({0, 1, 0.0, 10.0, 2.0});
  t.add({1, 2, 20.0, 40.0, 3.0});
  t.add({1, 2, 60.0, 80.0, 5.0});
  t.add({2, 3, 50.0, 90.0, 1.5});
  t.sort();
  return t;
}

TEST(ContactTrace, NormalizesEndpointOrder) {
  ContactTrace t(3, 10.0);
  t.add({2, 0, 1.0, 2.0, 1.0});
  EXPECT_EQ(t.contacts()[0].a, 0);
  EXPECT_EQ(t.contacts()[0].b, 2);
}

TEST(ContactTrace, Validation) {
  ContactTrace t(3, 10.0);
  EXPECT_THROW(t.add({0, 0, 1.0, 2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(t.add({0, 5, 1.0, 2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(t.add({0, 1, 2.0, 1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(t.add({0, 1, 1.0, 20.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(t.add({0, 1, 1.0, 2.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(ContactTrace(1, 10.0), std::invalid_argument);
}

TEST(ContactTrace, SortOrdersByStart) {
  ContactTrace t(3, 10.0);
  t.add({0, 1, 5.0, 6.0, 1.0});
  t.add({1, 2, 1.0, 2.0, 1.0});
  t.sort();
  EXPECT_DOUBLE_EQ(t.contacts()[0].start, 1.0);
}

TEST(ContactTrace, WindowClipsAndShifts) {
  const auto t = small_trace();
  const auto w = t.window(30.0, 70.0);
  EXPECT_DOUBLE_EQ(w.horizon(), 40.0);
  // Contact [20,40) clips to [30,40) → shifted [0,10).
  EXPECT_DOUBLE_EQ(w.contacts()[0].start, 0.0);
  EXPECT_DOUBLE_EQ(w.contacts()[0].end, 10.0);
  // Contact [0,10) falls outside entirely.
  for (const auto& c : w.contacts()) {
    EXPECT_GE(c.start, 0.0);
    EXPECT_LE(c.end, 40.0);
  }
  EXPECT_EQ(w.contact_count(), 3u);
}

TEST(ContactTrace, WindowValidation) {
  const auto t = small_trace();
  EXPECT_THROW(t.window(50.0, 40.0), std::invalid_argument);
  EXPECT_THROW(t.window(-1.0, 40.0), std::invalid_argument);
}

TEST(ContactTrace, HeadNodesFiltersContacts) {
  const auto t = small_trace();
  const auto h = t.head_nodes(3);
  EXPECT_EQ(h.node_count(), 3);
  for (const auto& c : h.contacts()) {
    EXPECT_LT(c.a, 3);
    EXPECT_LT(c.b, 3);
  }
  EXPECT_EQ(h.contact_count(), 3u);  // drops the 2-3 contact
}

TEST(ContactTrace, ToGraphPreservesPresence) {
  const auto t = small_trace();
  const auto g = t.to_graph(0.0);
  EXPECT_EQ(g.node_count(), 4);
  EXPECT_TRUE(g.present(0, 1, 5.0));
  EXPECT_FALSE(g.present(0, 1, 15.0));
  EXPECT_TRUE(g.present(1, 2, 70.0));
}

TEST(ContactTrace, InterContactTimes) {
  const auto t = small_trace();
  const auto gaps = t.inter_contact_times();
  // Only pair (1,2) meets twice: gap = 60 - 40 = 20.
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_DOUBLE_EQ(gaps[0], 20.0);
}

TEST(ContactTrace, AverageDegree) {
  const auto t = small_trace();
  EXPECT_DOUBLE_EQ(t.average_degree(5.0), 0.5);   // one live contact / 4 nodes
  EXPECT_DOUBLE_EQ(t.average_degree(70.0), 1.0);  // two live contacts
  EXPECT_DOUBLE_EQ(t.average_degree(95.0), 0.0);
}

TEST(ContactTrace, PairCount) {
  EXPECT_EQ(small_trace().pair_count(), 3u);
}

}  // namespace
}  // namespace tveg::trace
