// Malformed-input corpus: every file under tests/trace/corpus/ is an
// invalid trace, and the parser must answer each with a structured error —
// the right code, the right line number, never an exception and never a
// silently-"repaired" trace. The corpus also runs under ASan/UBSan in CI
// (scripts/ci.sh), so each file doubles as a memory-safety probe.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <string>

#include "support/result.hpp"
#include "trace/io.hpp"

#ifndef TVEG_TRACE_CORPUS_DIR
#error "TVEG_TRACE_CORPUS_DIR must point at tests/trace/corpus"
#endif

namespace tveg::trace {
namespace {

using support::ErrorCode;

struct Expectation {
  ErrorCode code;
  long line;  // -1 = whole-file error, no line attribution
};

const std::map<std::string, Expectation>& expectations() {
  static const std::map<std::string, Expectation> table = {
      {"bad_token.trace", {ErrorCode::kParse, 1}},
      {"too_few_fields.trace", {ErrorCode::kParse, 1}},
      {"too_many_fields.trace", {ErrorCode::kParse, 1}},
      {"bad_node_id.trace", {ErrorCode::kParse, 1}},
      {"overflow_number.trace", {ErrorCode::kParse, 1}},
      {"nan_time.trace", {ErrorCode::kParse, 1}},
      {"self_contact.trace", {ErrorCode::kInvalidInput, 2}},
      {"negative_start.trace", {ErrorCode::kInvalidInput, 1}},
      {"inverted_interval.trace", {ErrorCode::kInvalidInput, 1}},
      {"zero_length_interval.trace", {ErrorCode::kInvalidInput, 1}},
      {"negative_distance.trace", {ErrorCode::kInvalidInput, 1}},
      {"out_of_range_node.trace", {ErrorCode::kInvalidInput, 2}},
      {"bad_header_nodes.trace", {ErrorCode::kParse, 1}},
      {"bad_header_horizon.trace", {ErrorCode::kParse, 1}},
      {"single_node.trace", {ErrorCode::kInvalidInput, -1}},
      {"overlapping_intervals.trace", {ErrorCode::kInvalidInput, 3}},
  };
  return table;
}

TEST(TraceCorpus, EveryFileFailsWithStructuredError) {
  const std::filesystem::path dir = TVEG_TRACE_CORPUS_DIR;
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;

  std::size_t seen = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".trace") continue;
    ++seen;
    const std::string name = entry.path().filename().string();
    SCOPED_TRACE(name);

    const auto result = parse_trace_file(entry.path().string());
    ASSERT_FALSE(result.ok()) << "corpus file parsed successfully";
    EXPECT_FALSE(result.error().message.empty());
    EXPECT_NE(result.error().code, ErrorCode::kInternal);

    const auto it = expectations().find(name);
    ASSERT_NE(it, expectations().end())
        << "corpus file without a registered expectation";
    EXPECT_EQ(result.error().code, it->second.code);
    EXPECT_EQ(result.error().line, it->second.line);

    // The legacy throwing API must surface the same message, not crash.
    EXPECT_THROW(read_trace_file(entry.path().string()),
                 std::invalid_argument);
  }
  EXPECT_EQ(seen, expectations().size())
      << "corpus and expectation table out of sync";
}

TEST(TraceCorpus, ErrorRenderingCarriesLineNumber) {
  const std::filesystem::path file =
      std::filesystem::path(TVEG_TRACE_CORPUS_DIR) / "self_contact.trace";
  const auto result = parse_trace_file(file.string());
  ASSERT_FALSE(result.ok());
  const std::string rendered = result.error().to_string();
  EXPECT_NE(rendered.find("line 2"), std::string::npos) << rendered;
}

}  // namespace
}  // namespace tveg::trace
