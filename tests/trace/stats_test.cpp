#include "trace/stats.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"
#include "trace/generators.hpp"

namespace tveg::trace {
namespace {

TEST(HillEstimator, RecoversParetoShape) {
  support::Rng rng(7);
  for (double alpha : {1.2, 1.5, 2.5}) {
    std::vector<double> samples;
    for (int i = 0; i < 20000; ++i) samples.push_back(rng.pareto(10.0, alpha));
    const double est = hill_tail_exponent(samples, 0.3);
    EXPECT_NEAR(est, alpha, 0.15 * alpha) << "alpha " << alpha;
  }
}

TEST(HillEstimator, TooFewSamplesGiveZero) {
  EXPECT_DOUBLE_EQ(hill_tail_exponent({1.0, 2.0}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(hill_tail_exponent({}, 0.5), 0.0);
}

TEST(HillEstimator, IgnoresNonPositiveSamples) {
  support::Rng rng(9);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) samples.push_back(rng.pareto(5.0, 2.0));
  samples.push_back(0.0);
  samples.push_back(-3.0);
  EXPECT_GT(hill_tail_exponent(samples, 0.3), 1.0);
}

TEST(HillEstimator, RejectsBadFraction) {
  EXPECT_THROW(hill_tail_exponent({1.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(hill_tail_exponent({1.0}, 1.5), std::invalid_argument);
}

TEST(DegreeTimeline, MatchesPointQueries) {
  ContactTrace t(4, 100.0);
  t.add({0, 1, 0.0, 50.0, 1.0});
  t.add({2, 3, 50.0, 100.0, 1.0});
  const auto timeline = degree_timeline(t, 11);
  ASSERT_EQ(timeline.size(), 11u);
  EXPECT_DOUBLE_EQ(timeline[0], 0.5);   // t = 0
  EXPECT_DOUBLE_EQ(timeline[10], 0.5);  // just before the horizon
}

TEST(ContactsPerNode, Counts) {
  ContactTrace t(3, 10.0);
  t.add({0, 1, 0.0, 1.0, 1.0});
  t.add({0, 2, 2.0, 3.0, 1.0});
  t.add({0, 1, 4.0, 5.0, 1.0});
  const auto counts = contacts_per_node(t);
  EXPECT_EQ(counts, (std::vector<std::size_t>{3, 2, 1}));
}

TEST(Summarize, HaggleLikeTraceLooksHaggleLike) {
  HaggleLikeConfig cfg;
  cfg.nodes = 30;
  cfg.horizon = 17000;
  cfg.pareto_shape = 1.5;
  cfg.activation_ramp_end = 500;
  cfg.seed = 11;
  const auto trace = generate_haggle_like(cfg);
  const TraceSummary s = summarize(trace);
  EXPECT_EQ(s.contacts, trace.contact_count());
  EXPECT_EQ(s.pairs, trace.pair_count());
  EXPECT_GT(s.mean_contact_duration, 0.0);
  EXPECT_GT(s.mean_inter_contact, cfg.pareto_scale);
  EXPECT_GT(s.mean_degree, 0.0);
  EXPECT_GE(s.max_degree, s.mean_degree);
  // The generator's signature statistic: heavy inter-contact tail. The
  // horizon truncates long gaps, biasing Hill upward; accept a loose band.
  EXPECT_GT(s.inter_contact_tail_exponent, 0.8);
  EXPECT_LT(s.inter_contact_tail_exponent, 4.0);
}

TEST(Summarize, EmptyishTraceIsSafe) {
  ContactTrace t(3, 10.0);
  t.add({0, 1, 0.0, 1.0, 1.0});
  const TraceSummary s = summarize(t, 10);
  EXPECT_EQ(s.contacts, 1u);
  EXPECT_DOUBLE_EQ(s.mean_inter_contact, 0.0);
  EXPECT_DOUBLE_EQ(s.inter_contact_tail_exponent, 0.0);
}

}  // namespace
}  // namespace tveg::trace
