// The Theorem 4.1 reduction as an executable fixture: a Set Cover instance
// becomes a TMEDB instance whose optimal broadcast cost encodes the minimum
// cover size. Demonstrates the NP-hardness gadget and exercises the exact
// solver + EEDCB on structured (non-random) instances.
//
// Construction (step channel, τ = 0, unit radio ⇒ cost = distance²):
//   * node 0: source; nodes 1..n: set nodes; nodes n+1..n+m: element nodes.
//   * window [0, 1): source meets every set node at distance d0 (tiny) —
//     one broadcast of cost d0² informs all set nodes.
//   * window [1, 2): set node i meets exactly the element nodes of S_i at
//     distance 1 — transmitting costs exactly 1 per selected set
//     (broadcast nature: one payment covers all its elements).
// Optimal total = d0² + (minimum cover size).
#include <gtest/gtest.h>

#include <vector>

#include "core/brute_force.hpp"
#include "core/eedcb.hpp"
#include "support/math.hpp"

namespace tveg::core {
namespace {

constexpr double kTiny = 1e-3;  // source → set-node distance

channel::RadioParams unit_radio() {
  channel::RadioParams r;
  r.noise_density = 1.0;
  r.decoding_threshold_db = 0.0;
  r.path_loss_exponent = 2.0;
  r.epsilon = 0.01;
  r.w_max = support::kInf;
  return r;
}

/// Builds the TMEDB gadget for sets over elements 0..m-1.
Tveg reduce(const std::vector<std::vector<int>>& sets, int m) {
  const auto n = static_cast<NodeId>(sets.size());
  const NodeId total = 1 + n + static_cast<NodeId>(m);
  trace::ContactTrace t(total, 3.0);
  for (NodeId i = 0; i < n; ++i)
    t.add({0, static_cast<NodeId>(1 + i), 0.0, 1.0, kTiny});
  for (NodeId i = 0; i < n; ++i)
    for (int e : sets[static_cast<std::size_t>(i)])
      t.add({static_cast<NodeId>(1 + i),
             static_cast<NodeId>(1 + n + e), 1.0, 2.0, 1.0});
  t.sort();
  return Tveg(t, unit_radio(), {.model = channel::ChannelModel::kStep});
}

void expect_cover_size(const std::vector<std::vector<int>>& sets, int m,
                       int optimal_cover) {
  const Tveg tveg = reduce(sets, m);
  const TmedbInstance inst{&tveg, 0, 3.0};
  const BruteForceResult r = brute_force_optimal(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.cost, kTiny * kTiny + optimal_cover, 1e-9);

  // EEDCB returns a valid (possibly suboptimal) cover: cost at least the
  // optimum, and the schedule informs everyone.
  const SchedulerResult approx = run_eedcb(inst);
  ASSERT_TRUE(approx.covered_all);
  EXPECT_GE(approx.schedule.total_cost(), r.cost - 1e-9);
  EXPECT_TRUE(check_feasibility(inst, approx.schedule).feasible);
}

TEST(SetCoverReduction, SingleSetCoversAll) {
  expect_cover_size({{0, 1, 2}}, 3, 1);
}

TEST(SetCoverReduction, TwoDisjointSetsNeeded) {
  expect_cover_size({{0, 1}, {2, 3}}, 4, 2);
}

TEST(SetCoverReduction, GreedyTrapInstance) {
  // Classic instance where the big set {0,1,2,3} plus {4,5} is optimal (2)
  // while element-overlapping decoys exist.
  expect_cover_size({{0, 1, 2, 3}, {4, 5}, {0, 2, 4}, {1, 3, 5}}, 6, 2);
}

TEST(SetCoverReduction, RedundantSetIgnored) {
  expect_cover_size({{0, 1, 2}, {0, 1}, {2}}, 3, 1);
}

TEST(SetCoverReduction, ThreeWayPartition) {
  expect_cover_size({{0, 1}, {2, 3}, {4, 5}, {0, 2, 4}}, 6, 3);
}

TEST(SetCoverReduction, UncoverableElementMakesInstanceInfeasible) {
  const Tveg tveg = reduce({{0}}, 2);  // element 1 in no set
  const TmedbInstance inst{&tveg, 0, 3.0};
  EXPECT_FALSE(brute_force_optimal(inst).feasible);
  EXPECT_FALSE(run_eedcb(inst).covered_all);
}

}  // namespace
}  // namespace tveg::core
