#include "core/aux_graph.hpp"

#include <gtest/gtest.h>

#include "graph/steiner.hpp"
#include "support/math.hpp"

namespace tveg::core {
namespace {

channel::RadioParams test_radio() {
  channel::RadioParams r;
  r.epsilon = 0.01;
  r.w_max = support::kInf;
  return r;
}

/// Source 0; 1 near (d=1), 2 far (d=3); both contacts live the whole span.
Tveg star_tveg() {
  trace::ContactTrace t(3, 100.0);
  t.add({0, 1, 0.0, 100.0, 1.0});
  t.add({0, 2, 0.0, 100.0, 3.0});
  return Tveg(t, test_radio(), {.model = channel::ChannelModel::kStep});
}

TEST(AuxGraph, StructureCounts) {
  const Tveg tveg = star_tveg();
  const TmedbInstance inst{&tveg, 0, 100.0};
  const auto dts = tveg.build_dts();
  const AuxGraph aux(inst, dts);
  EXPECT_GT(aux.vertex_count(), 0u);
  EXPECT_GT(aux.arc_count(), 0u);
  EXPECT_EQ(aux.terminals().size(), 3u);
  EXPECT_NE(aux.source_vertex(), graph::kNoVertex);
}

TEST(AuxGraph, SteinerSolutionUsesBroadcastAdvantage) {
  const Tveg tveg = star_tveg();
  const TmedbInstance inst{&tveg, 0, 100.0};
  const auto dts = tveg.build_dts();
  const AuxGraph aux(inst, dts);

  graph::SteinerSolver solver(aux.digraph());
  const auto tree =
      solver.recursive_greedy(aux.source_vertex(), aux.terminals(), 2);
  ASSERT_TRUE(tree.feasible);
  const Schedule s = aux.extract_schedule(tree);

  // One transmission at the far cost informs both 1 and 2.
  ASSERT_EQ(s.size(), 1u);
  EXPECT_NEAR(s.total_cost(), tveg.radio().step_min_cost(3.0), 1e-30);
  EXPECT_TRUE(check_feasibility(inst, s).feasible);
}

TEST(AuxGraph, AblationWithoutPowerExpansionPaysPerReceiverInTheTree) {
  const Tveg tveg = star_tveg();
  const TmedbInstance inst{&tveg, 0, 100.0};
  const auto dts = tveg.build_dts();
  const AuxGraph with(inst, dts, {.power_expansion = true});
  const AuxGraph without(inst, dts, {.power_expansion = false});

  // Exact optima isolate the modeling difference from greedy noise.
  graph::SteinerSolver solver_with(with.digraph());
  graph::SteinerSolver solver_without(without.digraph());
  const auto tree_with =
      solver_with.exact_small(with.source_vertex(), with.terminals());
  const auto tree_without =
      solver_without.exact_small(without.source_vertex(), without.terminals());
  ASSERT_TRUE(tree_with.feasible);
  ASSERT_TRUE(tree_without.feasible);

  // The optimizer's objective degrades: per-receiver arcs pay near + far
  // instead of just far. (Schedule extraction coalesces same-relay-same-time
  // transmissions, which can win back some of the loss physically — the
  // ablation bench reports both numbers.)
  const Cost near = tveg.radio().step_min_cost(1.0);
  const Cost far = tveg.radio().step_min_cost(3.0);
  EXPECT_NEAR(tree_with.cost, far, far * 1e-9);
  EXPECT_NEAR(tree_without.cost, near + far, far * 1e-9);
}

TEST(AuxGraph, DeadlineClipsVertices) {
  const Tveg tveg = star_tveg();
  const auto dts = tveg.build_dts();
  const TmedbInstance full{&tveg, 0, 100.0};
  const TmedbInstance tight{&tveg, 0, 10.0};
  const AuxGraph aux_full(full, dts);
  const AuxGraph aux_tight(tight, dts);
  EXPECT_LE(aux_tight.vertex_count(), aux_full.vertex_count());
}

TEST(AuxGraph, TemporalStructureForcesWaiting) {
  // 0 meets 1 early; 1 meets 2 only later: the Steiner solution must place
  // 1's transmission inside the later contact.
  trace::ContactTrace t(3, 100.0);
  t.add({0, 1, 0.0, 20.0, 1.0});
  t.add({1, 2, 50.0, 80.0, 1.0});
  const Tveg tveg(t, test_radio(), {.model = channel::ChannelModel::kStep});
  const TmedbInstance inst{&tveg, 0, 100.0};
  const auto dts = tveg.build_dts();
  const AuxGraph aux(inst, dts);

  graph::SteinerSolver solver(aux.digraph());
  const auto tree =
      solver.recursive_greedy(aux.source_vertex(), aux.terminals(), 2);
  ASSERT_TRUE(tree.feasible);
  const Schedule s = aux.extract_schedule(tree);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.transmissions()[0].relay, 0);
  EXPECT_LT(s.transmissions()[0].time, 20.0);
  EXPECT_EQ(s.transmissions()[1].relay, 1);
  EXPECT_GE(s.transmissions()[1].time, 50.0);
  EXPECT_TRUE(check_feasibility(inst, s).feasible);
}

TEST(AuxGraph, InfeasibleWhenDeadlineTooTight) {
  trace::ContactTrace t(3, 100.0);
  t.add({0, 1, 0.0, 20.0, 1.0});
  t.add({1, 2, 50.0, 80.0, 1.0});
  const Tveg tveg(t, test_radio(), {.model = channel::ChannelModel::kStep});
  const TmedbInstance inst{&tveg, 0, 30.0};  // node 2 unreachable by 30
  const auto dts = tveg.build_dts();
  const AuxGraph aux(inst, dts);
  graph::SteinerSolver solver(aux.digraph());
  const auto tree =
      solver.recursive_greedy(aux.source_vertex(), aux.terminals(), 2);
  EXPECT_FALSE(tree.feasible);
}

TEST(AuxGraph, LatencyShiftsReceiverVertices) {
  trace::ContactTrace t(2, 100.0);
  t.add({0, 1, 0.0, 50.0, 1.0});
  const Tveg tveg(t, test_radio(),
                  {.model = channel::ChannelModel::kStep, .tau = 5.0});
  const TmedbInstance inst{&tveg, 0, 100.0};
  const auto dts = tveg.build_dts();
  const AuxGraph aux(inst, dts);
  graph::SteinerSolver solver(aux.digraph());
  const auto tree = solver.shortest_path_heuristic(aux.source_vertex(),
                                                   aux.terminals());
  ASSERT_TRUE(tree.feasible);
  const Schedule s = aux.extract_schedule(tree);
  ASSERT_EQ(s.size(), 1u);
  // Transmission must start early enough to complete within the contact.
  EXPECT_LE(s.transmissions()[0].time + 5.0, 50.0 + 1e-9);
  EXPECT_TRUE(check_feasibility(inst, s).feasible);
}

TEST(AuxGraph, VertexIdCodecIsArithmetic) {
  const Tveg tveg = star_tveg();
  const TmedbInstance inst{&tveg, 0, 100.0};
  const auto dts = tveg.build_dts();
  const AuxGraph aux(inst, dts);
  // u vertices are node-major and contiguous: id(u_{i,l}) follows the
  // point-offset codec, and everything at or above first_power_vertex() is
  // a power vertex.
  graph::VertexId expected = 0;
  for (NodeId i = 0; i < 3; ++i)
    for (std::size_t l = 0; l < aux.point_count(i); ++l)
      EXPECT_EQ(aux.node_vertex(i, l), expected++);
  EXPECT_EQ(aux.first_power_vertex(), expected);
  EXPECT_LE(static_cast<std::size_t>(aux.first_power_vertex()) +
                aux.live_power_vertex_count(),
            aux.vertex_count());
}

TEST(AuxGraph, ExtractScheduleDecodesPowerVerticesArithmetically) {
  // Pin the decode path directly: a hand-built "tree" containing exactly
  // one transmit arc (into a power vertex) plus chain/deliver arcs must
  // yield the same schedule as the full solver round-trip — the before/
  // after identity for the flat-id rewrite of extract_schedule.
  const Tveg tveg = star_tveg();
  const TmedbInstance inst{&tveg, 0, 100.0};
  const auto dts = tveg.build_dts();
  const AuxGraph aux(inst, dts);

  graph::SteinerSolver solver(aux.digraph());
  const auto tree =
      solver.recursive_greedy(aux.source_vertex(), aux.terminals(), 2);
  ASSERT_TRUE(tree.feasible);
  const Schedule full = aux.extract_schedule(tree);
  ASSERT_EQ(full.size(), 1u);

  // Re-extract from a reordered copy with the non-power arcs stripped:
  // only arcs entering vertices >= first_power_vertex() may contribute.
  graph::SteinerResult transmit_only;
  for (const auto& arc : tree.arcs)
    if (arc.to >= aux.first_power_vertex()) transmit_only.arcs.push_back(arc);
  ASSERT_GE(transmit_only.arcs.size(), 1u);
  const Schedule decoded = aux.extract_schedule(transmit_only);
  ASSERT_EQ(decoded.size(), full.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(decoded.transmissions()[i].relay, full.transmissions()[i].relay);
    EXPECT_DOUBLE_EQ(decoded.transmissions()[i].time,
                     full.transmissions()[i].time);
    EXPECT_DOUBLE_EQ(decoded.transmissions()[i].cost,
                     full.transmissions()[i].cost);
  }
}

TEST(AuxGraph, DigraphIsFrozenAtConstructionEnd) {
  const Tveg tveg = star_tveg();
  const TmedbInstance inst{&tveg, 0, 100.0};
  const auto dts = tveg.build_dts();
  const AuxGraph aux(inst, dts);
  EXPECT_TRUE(aux.digraph().frozen());
}

TEST(AuxGraph, PointAccessors) {
  const Tveg tveg = star_tveg();
  const TmedbInstance inst{&tveg, 0, 100.0};
  const auto dts = tveg.build_dts();
  const AuxGraph aux(inst, dts);
  ASSERT_GT(aux.point_count(0), 0u);
  EXPECT_DOUBLE_EQ(aux.point_time(0, 0), 0.0);
  EXPECT_NO_THROW(aux.node_vertex(0, 0));
  EXPECT_THROW(aux.node_vertex(0, 10000), std::invalid_argument);
}

}  // namespace
}  // namespace tveg::core
