#include "core/baselines.hpp"

#include <gtest/gtest.h>

#include "support/math.hpp"
#include "trace/generators.hpp"

namespace tveg::core {
namespace {

channel::RadioParams test_radio() {
  channel::RadioParams r;
  r.epsilon = 0.01;
  r.w_max = support::kInf;
  return r;
}

Tveg haggle_step_tveg(NodeId nodes = 12, std::uint64_t seed = 3) {
  trace::HaggleLikeConfig cfg;
  cfg.nodes = nodes;
  cfg.horizon = 6000;
  cfg.activation_ramp_end = 1000;
  cfg.pair_probability = 0.5;
  cfg.seed = seed;
  return Tveg(trace::generate_haggle_like(cfg), test_radio(),
              {.model = channel::ChannelModel::kStep});
}

TEST(Greed, ProducesFeasibleSchedule) {
  const Tveg tveg = haggle_step_tveg();
  const TmedbInstance inst{&tveg, 0, 5000.0};
  BaselineOptions opt;
  opt.rule = BaselineRule::kGreedy;
  const SchedulerResult r = run_baseline(inst, opt);
  ASSERT_TRUE(r.covered_all);
  const auto report = check_feasibility(inst, r.schedule);
  EXPECT_TRUE(report.feasible) << report.reason;
}

TEST(Rand, ProducesFeasibleSchedule) {
  const Tveg tveg = haggle_step_tveg();
  const TmedbInstance inst{&tveg, 0, 5000.0};
  BaselineOptions opt;
  opt.rule = BaselineRule::kRandom;
  opt.seed = 17;
  const SchedulerResult r = run_baseline(inst, opt);
  ASSERT_TRUE(r.covered_all);
  EXPECT_TRUE(check_feasibility(inst, r.schedule).feasible);
}

TEST(Rand, DeterministicPerSeed) {
  const Tveg tveg = haggle_step_tveg();
  const TmedbInstance inst{&tveg, 0, 5000.0};
  const auto dts = tveg.build_dts();
  BaselineOptions opt;
  opt.rule = BaselineRule::kRandom;
  opt.seed = 5;
  const auto a = run_baseline(inst, dts, opt);
  const auto b = run_baseline(inst, dts, opt);
  EXPECT_EQ(a.schedule.transmissions(), b.schedule.transmissions());
}

TEST(Greed, PicksWidestCoverageFirst) {
  // Source 0 adjacent to 1, 2, 3; node 4 reachable only through 3.
  trace::ContactTrace t(5, 100.0);
  t.add({0, 1, 0.0, 100.0, 1.0});
  t.add({0, 2, 0.0, 100.0, 2.0});
  t.add({0, 3, 0.0, 100.0, 3.0});
  t.add({3, 4, 0.0, 100.0, 1.0});
  const Tveg tveg(t, test_radio(), {.model = channel::ChannelModel::kStep});
  const TmedbInstance inst{&tveg, 0, 100.0};
  const SchedulerResult r =
      run_baseline(inst, {.rule = BaselineRule::kGreedy});
  ASSERT_TRUE(r.covered_all);
  // First action: source covers all three neighbors at the cost of the
  // farthest (minimal sufficient DCS level), then 3 relays to 4.
  ASSERT_EQ(r.schedule.size(), 2u);
  EXPECT_EQ(r.schedule.transmissions()[0].relay, 0);
  EXPECT_NEAR(r.schedule.transmissions()[0].cost,
              tveg.radio().step_min_cost(3.0), 1e-30);
  EXPECT_EQ(r.schedule.transmissions()[1].relay, 3);
}

TEST(Greed, WaitsForLaterContacts) {
  trace::ContactTrace t(3, 100.0);
  t.add({0, 1, 0.0, 20.0, 1.0});
  t.add({1, 2, 50.0, 80.0, 1.0});
  const Tveg tveg(t, test_radio(), {.model = channel::ChannelModel::kStep});
  const TmedbInstance inst{&tveg, 0, 100.0};
  const SchedulerResult r =
      run_baseline(inst, {.rule = BaselineRule::kGreedy});
  ASSERT_TRUE(r.covered_all);
  ASSERT_EQ(r.schedule.size(), 2u);
  EXPECT_GE(r.schedule.transmissions()[1].time, 50.0);
  EXPECT_TRUE(check_feasibility(inst, r.schedule).feasible);
}

TEST(Greed, RespectsDeadline) {
  trace::ContactTrace t(3, 100.0);
  t.add({0, 1, 0.0, 20.0, 1.0});
  t.add({1, 2, 50.0, 80.0, 1.0});
  const Tveg tveg(t, test_radio(), {.model = channel::ChannelModel::kStep});
  const TmedbInstance inst{&tveg, 0, 40.0};  // node 2's contact is too late
  const SchedulerResult r =
      run_baseline(inst, {.rule = BaselineRule::kGreedy});
  EXPECT_FALSE(r.covered_all);
  for (const auto& tx : r.schedule.transmissions())
    EXPECT_LE(tx.time, 40.0);
}

TEST(Baselines, GreedNeverCostlierThanRandOnAverage) {
  // Averaged over sources and seeds, GREED ≤ RAND (the paper's ordering).
  double greed_total = 0, rand_total = 0;
  int runs = 0;
  for (std::uint64_t seed : {3u, 4u, 5u}) {
    const Tveg tveg = haggle_step_tveg(12, seed);
    const auto dts = tveg.build_dts();
    for (NodeId src : {0, 5}) {
      const TmedbInstance inst{&tveg, src, 5500.0};
      const auto g =
          run_baseline(inst, dts, {.rule = BaselineRule::kGreedy});
      const auto r = run_baseline(
          inst, dts, {.rule = BaselineRule::kRandom, .seed = seed});
      if (!g.covered_all || !r.covered_all) continue;
      greed_total += g.schedule.total_cost();
      rand_total += r.schedule.total_cost();
      ++runs;
    }
  }
  ASSERT_GT(runs, 2);
  EXPECT_LE(greed_total, rand_total * 1.05);
}

TEST(Baselines, SourceOnlyInstanceTrivial) {
  trace::ContactTrace t(2, 10.0);
  t.add({0, 1, 0.0, 10.0, 1.0});
  const Tveg tveg(t, test_radio(), {.model = channel::ChannelModel::kStep});
  const TmedbInstance inst{&tveg, 0, 10.0};
  const SchedulerResult r =
      run_baseline(inst, {.rule = BaselineRule::kGreedy});
  ASSERT_TRUE(r.covered_all);
  EXPECT_EQ(r.schedule.size(), 1u);
}

}  // namespace
}  // namespace tveg::core
