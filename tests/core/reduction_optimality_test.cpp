// Cross-validation of the Sec. VI-A reduction: solving the auxiliary graph
// EXACTLY (subset-DP directed Steiner) must yield the same optimal cost as
// the brute-force TMEDB state-space search. Together with
// dts_equivalence_test this pins down the whole chain
//   TMEDB on continuous time == TMEDB on DTS == MEMT on the aux graph.
#include <gtest/gtest.h>

#include "core/aux_graph.hpp"
#include "core/brute_force.hpp"
#include "graph/steiner.hpp"
#include "support/math.hpp"
#include "trace/generators.hpp"

namespace tveg::core {
namespace {

channel::RadioParams unit_radio() {
  channel::RadioParams r;
  r.noise_density = 1.0;
  r.decoding_threshold_db = 0.0;
  r.path_loss_exponent = 2.0;
  r.epsilon = 0.01;
  r.w_max = support::kInf;
  return r;
}

TEST(ReductionOptimality, ExactSteinerOnAuxEqualsBruteForce) {
  int compared = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    trace::SnapshotConfig cfg;
    cfg.nodes = 5;
    cfg.slot = 30;
    cfg.horizon = 150;
    cfg.p = 0.3;
    cfg.min_distance = 1.0;
    cfg.max_distance = 4.0;
    cfg.seed = seed;
    const Tveg tveg(trace::generate_snapshots(cfg), unit_radio(),
                    {.model = channel::ChannelModel::kStep});
    const TmedbInstance inst{&tveg, 0, 150.0};
    const auto dts = tveg.build_dts();

    const BruteForceResult opt = brute_force_optimal(inst);

    const AuxGraph aux(inst, dts);
    graph::SteinerSolver solver(aux.digraph());
    const auto tree =
        solver.exact_small(aux.source_vertex(), aux.terminals());

    ASSERT_EQ(opt.feasible, tree.feasible) << "seed " << seed;
    if (!opt.feasible) continue;
    EXPECT_NEAR(opt.cost, tree.cost, 1e-9) << "seed " << seed;

    // The exact tree reconstructs into an optimal, feasible SCHEDULE.
    const Schedule optimal_schedule = aux.extract_schedule(tree);
    EXPECT_NEAR(optimal_schedule.total_cost(), opt.cost, 1e-9)
        << "seed " << seed;
    EXPECT_TRUE(check_feasibility(inst, optimal_schedule).feasible)
        << "seed " << seed;
    ++compared;
  }
  EXPECT_GE(compared, 4);  // enough feasible instances actually compared
}

TEST(ReductionOptimality, HeuristicsBracketedByExact) {
  for (std::uint64_t seed = 20; seed <= 26; ++seed) {
    trace::SnapshotConfig cfg;
    cfg.nodes = 6;
    cfg.slot = 25;
    cfg.horizon = 125;
    cfg.p = 0.35;
    cfg.seed = seed;
    const Tveg tveg(trace::generate_snapshots(cfg), unit_radio(),
                    {.model = channel::ChannelModel::kStep});
    const TmedbInstance inst{&tveg, 0, 125.0};
    const auto dts = tveg.build_dts();
    const AuxGraph aux(inst, dts);
    graph::SteinerSolver solver(aux.digraph());

    const auto exact = solver.exact_small(aux.source_vertex(), aux.terminals());
    if (!exact.feasible) continue;
    const auto spt = solver.shortest_path_heuristic(aux.source_vertex(),
                                                    aux.terminals());
    const auto greedy =
        solver.recursive_greedy(aux.source_vertex(), aux.terminals(), 2);
    EXPECT_LE(exact.cost, spt.cost + 1e-9) << "seed " << seed;
    EXPECT_LE(exact.cost, greedy.cost + 1e-9) << "seed " << seed;
    // Level-2 recursive greedy on these tiny instances stays within the
    // paper's approximation regime by a wide margin (factor O(√N) ≈ 2.4).
    EXPECT_LE(greedy.cost, exact.cost * 3.0) << "seed " << seed;
  }
}

}  // namespace
}  // namespace tveg::core
