// EdWeightCache property tests: cached queries must be indistinguishable —
// bit for bit — from the memoization-free Tveg, under random interleaved
// lookups, under capacity pressure (whole-shard eviction), and under
// concurrent readers (the TSan tier runs the stress test instrumented).
#include "core/ed_weight_cache.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/tveg.hpp"
#include "support/math.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "trace/generators.hpp"

namespace tveg::core {
namespace {

channel::RadioParams unit_radio() {
  channel::RadioParams r;
  r.noise_density = 1.0;
  r.decoding_threshold_db = 0.0;
  r.path_loss_exponent = 2.0;
  r.epsilon = 0.01;
  r.w_max = support::kInf;
  return r;
}

trace::ContactTrace random_trace(std::uint64_t seed) {
  trace::SnapshotConfig cfg;
  cfg.nodes = 8;
  cfg.slot = 10;
  cfg.horizon = 200;
  cfg.p = 0.3;
  cfg.seed = seed;
  return trace::generate_snapshots(cfg);
}

Tveg::Options model_options(channel::ChannelModel model) {
  Tveg::Options o;
  o.model = model;
  return o;
}

/// Randomized interleaved lookups against a memo-free twin, across all four
/// channel models (Nakagami/Rician exercise the bisection-backed min-cost).
TEST(EdWeightCache, MatchesMemoFreeReferenceExactly) {
  for (const auto model :
       {channel::ChannelModel::kStep, channel::ChannelModel::kRayleigh,
        channel::ChannelModel::kNakagami, channel::ChannelModel::kRician}) {
    const trace::ContactTrace t = random_trace(7);
    const Tveg reference(t, unit_radio(), model_options(model));
    Tveg cached(t, unit_radio(), model_options(model));
    cached.attach_cache(std::make_shared<EdWeightCache>());

    support::Rng rng(42);
    const auto n = reference.node_count();
    for (int q = 0; q < 2000; ++q) {
      const auto a = static_cast<NodeId>(rng.uniform_int(
          static_cast<std::uint64_t>(n)));
      const auto b = static_cast<NodeId>(rng.uniform_int(
          static_cast<std::uint64_t>(n)));
      if (a == b) continue;
      const Time time = rng.uniform(0.0, 200.0);
      // Exact equality, not near-equality: the cache must route through the
      // identical materialization code path.
      ASSERT_EQ(reference.edge_weight(a, b, time),
                cached.edge_weight(a, b, time))
          << "model " << static_cast<int>(model) << " pair " << a << "," << b
          << " t=" << time;
      const Cost w = rng.uniform(0.0, 10.0);
      ASSERT_EQ(reference.failure_probability(a, b, time, w),
                cached.failure_probability(a, b, time, w));
    }
    const auto stats = cached.cache()->stats();
    EXPECT_GT(stats.hits, 0u);
    EXPECT_GT(stats.misses, 0u);
  }
}

/// The discrete cost sets (the aux-graph input) must agree as well — they
/// aggregate many edge weights and feed the schedule directly.
TEST(EdWeightCache, DiscreteCostSetsMatch) {
  const trace::ContactTrace t = random_trace(11);
  const Tveg reference(t, unit_radio(),
                       model_options(channel::ChannelModel::kRayleigh));
  Tveg cached(t, unit_radio(),
              model_options(channel::ChannelModel::kRayleigh));
  cached.attach_cache(std::make_shared<EdWeightCache>());

  for (NodeId i = 0; i < reference.node_count(); ++i)
    for (Time time : {0.0, 25.0, 99.5, 150.0, 199.0}) {
      const auto ref = reference.discrete_cost_set(i, time);
      const auto got = cached.discrete_cost_set(i, time);
      ASSERT_EQ(ref.size(), got.size());
      for (std::size_t k = 0; k < ref.size(); ++k) {
        EXPECT_EQ(ref[k].cost, got[k].cost);
        EXPECT_EQ(ref[k].neighbor, got[k].neighbor);
      }
    }
}

/// A pathologically small capacity forces whole-shard evictions mid-stream;
/// results must stay exact and the eviction counter must move.
TEST(EdWeightCache, EvictionPreservesCorrectness) {
  const trace::ContactTrace t = random_trace(3);
  const Tveg reference(t, unit_radio(),
                       model_options(channel::ChannelModel::kNakagami));
  Tveg cached(t, unit_radio(),
              model_options(channel::ChannelModel::kNakagami));
  auto cache = std::make_shared<EdWeightCache>(EdWeightCache::Options{
      .max_entries = 4});
  cached.attach_cache(cache);

  support::Rng rng(5);
  const auto n = reference.node_count();
  for (int q = 0; q < 3000; ++q) {
    const auto a = static_cast<NodeId>(rng.uniform_int(
        static_cast<std::uint64_t>(n)));
    const auto b = static_cast<NodeId>(rng.uniform_int(
        static_cast<std::uint64_t>(n)));
    if (a == b) continue;
    const Time time = rng.uniform(0.0, 200.0);
    ASSERT_EQ(reference.edge_weight(a, b, time),
              cached.edge_weight(a, b, time));
  }
  EXPECT_GT(cache->stats().evictions, 0u);

  // clear() drops entries but not counters; queries keep working.
  cache->clear();
  EXPECT_GT(cache->stats().misses, 0u);
  EXPECT_EQ(reference.edge_weight(0, 1, 0.0), cached.edge_weight(0, 1, 0.0));
}

/// An ED-function handed out by the cache must survive eviction of its
/// entry (shared ownership), not dangle.
TEST(EdWeightCache, HandedOutEdSurvivesEviction) {
  const trace::ContactTrace t = random_trace(9);
  Tveg cached(t, unit_radio(),
              model_options(channel::ChannelModel::kRayleigh));
  auto cache = std::make_shared<EdWeightCache>(EdWeightCache::Options{
      .max_entries = 2});
  cached.attach_cache(cache);

  const std::size_t e = cached.edge_index(0, 1);
  if (e == Tveg::npos) GTEST_SKIP() << "pair 0-1 never meets in this trace";
  const auto ed = cache->ed(cached, e, 0.0);
  const double before = ed->failure_probability(1.0);
  cache->clear();
  // Entry is gone; the handed-out function still answers identically.
  EXPECT_EQ(before, ed->failure_probability(1.0));
}

/// Concurrent readers hammering one cache (including races on the same
/// cold key, which fill twice with identical values) must agree with the
/// serial reference. The TSan CI tier runs this instrumented.
TEST(EdWeightCache, ConcurrentReadersStress) {
  const trace::ContactTrace t = random_trace(13);
  const Tveg reference(t, unit_radio(),
                       model_options(channel::ChannelModel::kRayleigh));
  Tveg cached(t, unit_radio(),
              model_options(channel::ChannelModel::kRayleigh));
  // Small capacity: evictions race with lookups too.
  cached.attach_cache(std::make_shared<EdWeightCache>(EdWeightCache::Options{
      .max_entries = 32}));

  // Deterministic query set, precomputed serial answers.
  struct Query {
    NodeId a;
    NodeId b;
    Time t;
    Cost expected;
  };
  std::vector<Query> queries;
  support::Rng rng(99);
  const auto n = reference.node_count();
  for (int q = 0; q < 4000; ++q) {
    const auto a = static_cast<NodeId>(rng.uniform_int(
        static_cast<std::uint64_t>(n)));
    const auto b = static_cast<NodeId>(rng.uniform_int(
        static_cast<std::uint64_t>(n)));
    if (a == b) continue;
    const Time time = rng.uniform(0.0, 200.0);
    queries.push_back({a, b, time, reference.edge_weight(a, b, time)});
  }

  support::ThreadPool workers(8);
  std::vector<char> ok(queries.size(), 0);
  workers.parallel_for(0, queries.size(), [&](std::size_t i) {
    const Query& q = queries[i];
    ok[i] = cached.edge_weight(q.a, q.b, q.t) == q.expected ? 1 : 0;
  });
  for (std::size_t i = 0; i < queries.size(); ++i)
    ASSERT_TRUE(ok[i]) << "query " << i;
}

/// Caches flush their counters into tveg.cache.* on destruction; builds are
/// counted immediately.
TEST(EdWeightCache, StatsAccounting) {
  const trace::ContactTrace t = random_trace(1);
  Tveg cached(t, unit_radio(), model_options(channel::ChannelModel::kStep));
  auto cache = std::make_shared<EdWeightCache>();
  cached.attach_cache(cache);
  const auto before = cache->stats();
  EXPECT_EQ(before.hits + before.misses, 0u);
  const std::size_t e = cached.edge_index(0, 1);
  if (e == Tveg::npos) GTEST_SKIP() << "pair 0-1 never meets in this trace";
  (void)cache->edge_weight(cached, e, 0.0);
  (void)cache->edge_weight(cached, e, 0.0);
  const auto after = cache->stats();
  EXPECT_EQ(after.misses, 1u);
  EXPECT_EQ(after.hits, 1u);
}

/// A byte bound (max_bytes) alone must drive pressure evictions — and the
/// cached answers must stay exact throughout.
TEST(EdWeightCache, ByteBoundForcesPressureEvictions) {
  const trace::ContactTrace t = random_trace(17);
  const Tveg reference(t, unit_radio(),
                       model_options(channel::ChannelModel::kRayleigh));
  Tveg cached(t, unit_radio(),
              model_options(channel::ChannelModel::kRayleigh));
  EdWeightCache::Options options;
  options.max_bytes = 6 * EdWeightCache::kApproxEntryBytes;
  auto cache = std::make_shared<EdWeightCache>(options);
  cached.attach_cache(cache);

  support::Rng rng(21);
  const auto n = reference.node_count();
  for (int q = 0; q < 2000; ++q) {
    const auto a = static_cast<NodeId>(rng.uniform_int(
        static_cast<std::uint64_t>(n)));
    const auto b = static_cast<NodeId>(rng.uniform_int(
        static_cast<std::uint64_t>(n)));
    if (a == b) continue;
    const Time time = rng.uniform(0.0, 200.0);
    ASSERT_EQ(reference.edge_weight(a, b, time),
              cached.edge_weight(a, b, time));
  }
  const auto stats = cache->stats();
  EXPECT_GT(stats.pressure_evictions, 0u);
  // Pressure evictions are a subset of all evictions, and the resident
  // footprint stays a multiple of the approximate entry size.
  EXPECT_GE(stats.evictions, stats.pressure_evictions);
  EXPECT_EQ(stats.approx_bytes % EdWeightCache::kApproxEntryBytes, 0u);
}

/// A shared MemBudget ledger mirrors residency exactly: charged on insert,
/// released on eviction/clear/destruction, and its over() pressure evicts
/// even when the cache's own bounds are unlimited.
TEST(EdWeightCache, SharedLedgerAccountsResidency) {
  const trace::ContactTrace t = random_trace(19);
  support::MemBudget mem(4 * EdWeightCache::kApproxEntryBytes);
  {
    Tveg cached(t, unit_radio(), model_options(channel::ChannelModel::kStep));
    EdWeightCache::Options options;
    options.mem = &mem;  // no max_entries/max_bytes pressure of its own
    options.max_entries = 0;
    auto cache = std::make_shared<EdWeightCache>(options);
    cached.attach_cache(cache);

    support::Rng rng(23);
    const auto n = cached.node_count();
    for (int q = 0; q < 1500; ++q) {
      const auto a = static_cast<NodeId>(rng.uniform_int(
          static_cast<std::uint64_t>(n)));
      const auto b = static_cast<NodeId>(rng.uniform_int(
          static_cast<std::uint64_t>(n)));
      if (a == b) continue;
      (void)cached.edge_weight(a, b, rng.uniform(0.0, 200.0));
    }
    const auto stats = cache->stats();
    EXPECT_GT(stats.pressure_evictions, 0u);
    // Ledger and cache agree on the resident footprint.
    EXPECT_EQ(mem.used(), stats.approx_bytes);

    cache->clear();
    EXPECT_EQ(mem.used(), 0u);
    EXPECT_EQ(cache->stats().approx_bytes, 0u);

    // Refill a little so destruction has bytes to release.
    (void)cached.edge_weight(0, 1, 0.0);
  }
  // Cache (and Tveg) destroyed: everything was released back.
  EXPECT_EQ(mem.used(), 0u);
}

/// Two caches charging one ledger: aggregate pressure governs both.
TEST(EdWeightCache, TwoCachesShareOneBudget) {
  const trace::ContactTrace t = random_trace(29);
  support::MemBudget mem(8 * EdWeightCache::kApproxEntryBytes);
  EdWeightCache::Options options;
  options.mem = &mem;
  Tveg step_view(t, unit_radio(), model_options(channel::ChannelModel::kStep));
  Tveg fading_view(t, unit_radio(),
                   model_options(channel::ChannelModel::kRayleigh));
  auto a = std::make_shared<EdWeightCache>(options);
  auto b = std::make_shared<EdWeightCache>(options);
  step_view.attach_cache(a);
  fading_view.attach_cache(b);

  support::Rng rng(31);
  const auto n = step_view.node_count();
  for (int q = 0; q < 1500; ++q) {
    const auto x = static_cast<NodeId>(rng.uniform_int(
        static_cast<std::uint64_t>(n)));
    const auto y = static_cast<NodeId>(rng.uniform_int(
        static_cast<std::uint64_t>(n)));
    if (x == y) continue;
    const Time time = rng.uniform(0.0, 200.0);
    (void)step_view.edge_weight(x, y, time);
    (void)fading_view.edge_weight(x, y, time);
  }
  // Both caches fed the same ledger, and at least one was pressured by the
  // other's residency.
  EXPECT_EQ(mem.used(), a->stats().approx_bytes + b->stats().approx_bytes);
  EXPECT_GT(a->stats().pressure_evictions + b->stats().pressure_evictions, 0u);
}

}  // namespace
}  // namespace tveg::core
