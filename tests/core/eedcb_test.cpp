#include "core/eedcb.hpp"

#include <gtest/gtest.h>

#include "core/prune.hpp"
#include "support/math.hpp"
#include "trace/generators.hpp"

namespace tveg::core {
namespace {

channel::RadioParams test_radio() {
  channel::RadioParams r;
  r.epsilon = 0.01;
  r.w_max = support::kInf;
  return r;
}

Tveg haggle_step_tveg(NodeId nodes = 12, std::uint64_t seed = 3) {
  trace::HaggleLikeConfig cfg;
  cfg.nodes = nodes;
  cfg.horizon = 6000;
  cfg.activation_ramp_end = 1000;
  cfg.pair_probability = 0.5;
  cfg.seed = seed;
  return Tveg(trace::generate_haggle_like(cfg), test_radio(),
              {.model = channel::ChannelModel::kStep});
}

TEST(Eedcb, ProducesFeasibleScheduleOnConnectedTrace) {
  const Tveg tveg = haggle_step_tveg();
  const TmedbInstance inst{&tveg, 0, 5000.0};
  const SchedulerResult r = run_eedcb(inst);
  ASSERT_TRUE(r.covered_all);
  const auto report = check_feasibility(inst, r.schedule);
  EXPECT_TRUE(report.feasible) << report.reason;
  EXPECT_GT(r.stats.dts_points, 0u);
  EXPECT_GT(r.stats.aux_vertices, 0u);
}

TEST(Eedcb, RecursiveGreedyNotWorseThanSpt) {
  const Tveg tveg = haggle_step_tveg();
  const TmedbInstance inst{&tveg, 0, 5000.0};
  const auto dts = tveg.build_dts();
  EedcbOptions spt;
  spt.method = SteinerMethod::kShortestPath;
  EedcbOptions greedy;
  greedy.method = SteinerMethod::kRecursiveGreedy;
  greedy.steiner_level = 2;
  const auto r_spt = run_eedcb(inst, dts, spt);
  const auto r_greedy = run_eedcb(inst, dts, greedy);
  ASSERT_TRUE(r_spt.covered_all);
  ASSERT_TRUE(r_greedy.covered_all);
  // Not a theorem (both are heuristics after pruning), but holds with slack
  // on this fixed instance and guards against quality regressions.
  EXPECT_LE(r_greedy.schedule.total_cost(),
            r_spt.schedule.total_cost() * 1.25);
}

TEST(Eedcb, PruningNeverHurts) {
  const Tveg tveg = haggle_step_tveg();
  const TmedbInstance inst{&tveg, 0, 5000.0};
  const auto dts = tveg.build_dts();
  EedcbOptions raw;
  raw.prune = false;
  EedcbOptions pruned;
  pruned.prune = true;
  const auto r_raw = run_eedcb(inst, dts, raw);
  const auto r_pruned = run_eedcb(inst, dts, pruned);
  ASSERT_TRUE(r_raw.covered_all);
  EXPECT_LE(r_pruned.schedule.total_cost(),
            r_raw.schedule.total_cost() + 1e-30);
  EXPECT_TRUE(check_feasibility(inst, r_pruned.schedule).feasible);
}

TEST(Eedcb, LongerDeadlineNeverCostsMore) {
  const Tveg tveg = haggle_step_tveg(12, 5);
  const auto dts = tveg.build_dts();
  const TmedbInstance tight{&tveg, 0, 3000.0};
  const TmedbInstance loose{&tveg, 0, 6000.0};
  const auto r_tight = run_eedcb(tight, dts);
  const auto r_loose = run_eedcb(loose, dts);
  if (r_tight.covered_all && r_loose.covered_all) {
    // More time → superset of feasible schedules; the heuristic gets slack.
    EXPECT_LE(r_loose.schedule.total_cost(),
              r_tight.schedule.total_cost() * 1.3);
  }
}

TEST(Eedcb, ReportsUncoveredWhenDisconnected) {
  trace::ContactTrace t(3, 100.0);
  t.add({0, 1, 0.0, 100.0, 1.0});  // node 2 isolated
  const Tveg tveg(t, test_radio(), {.model = channel::ChannelModel::kStep});
  const TmedbInstance inst{&tveg, 0, 100.0};
  const SchedulerResult r = run_eedcb(inst);
  EXPECT_FALSE(r.covered_all);
}

TEST(Eedcb, SingleHopBroadcastUsesOneTransmission) {
  trace::ContactTrace t(4, 100.0);
  t.add({0, 1, 0.0, 100.0, 1.0});
  t.add({0, 2, 0.0, 100.0, 2.0});
  t.add({0, 3, 0.0, 100.0, 3.0});
  const Tveg tveg(t, test_radio(), {.model = channel::ChannelModel::kStep});
  const TmedbInstance inst{&tveg, 0, 100.0};
  const SchedulerResult r = run_eedcb(inst);
  ASSERT_TRUE(r.covered_all);
  ASSERT_EQ(r.schedule.size(), 1u);
  EXPECT_NEAR(r.schedule.total_cost(), tveg.radio().step_min_cost(3.0),
              1e-30);
}

TEST(Prune, RemovesRedundantTransmission) {
  trace::ContactTrace t(3, 100.0);
  t.add({0, 1, 0.0, 100.0, 1.0});
  t.add({0, 2, 0.0, 100.0, 2.0});
  const Tveg tveg(t, test_radio(), {.model = channel::ChannelModel::kStep});
  const TmedbInstance inst{&tveg, 0, 100.0};
  Schedule bloated;
  bloated.add(0, 1.0, tveg.radio().step_min_cost(2.0));  // reaches both
  bloated.add(0, 5.0, tveg.radio().step_min_cost(1.0));  // redundant
  const Schedule pruned = prune_schedule(inst, bloated);
  EXPECT_EQ(pruned.size(), 1u);
  EXPECT_TRUE(check_feasibility(inst, pruned).feasible);
}

TEST(Prune, LowersOverpoweredTransmission) {
  trace::ContactTrace t(2, 100.0);
  t.add({0, 1, 0.0, 100.0, 1.0});
  const Tveg tveg(t, test_radio(), {.model = channel::ChannelModel::kStep});
  const TmedbInstance inst{&tveg, 0, 100.0};
  Schedule s;
  s.add(0, 1.0, tveg.radio().step_min_cost(1.0) * 50);  // over-powered
  const Schedule pruned = prune_schedule(inst, s);
  ASSERT_EQ(pruned.size(), 1u);
  EXPECT_NEAR(pruned.total_cost(), tveg.radio().step_min_cost(1.0), 1e-30);
}

TEST(Prune, LeavesInfeasibleScheduleUntouched) {
  trace::ContactTrace t(2, 100.0);
  t.add({0, 1, 0.0, 100.0, 1.0});
  const Tveg tveg(t, test_radio(), {.model = channel::ChannelModel::kStep});
  const TmedbInstance inst{&tveg, 0, 100.0};
  Schedule s;  // empty: node 1 uncovered
  const Schedule out = prune_schedule(inst, s);
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace tveg::core
