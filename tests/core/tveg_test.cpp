#include "core/tveg.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/math.hpp"

namespace tveg::core {
namespace {

channel::RadioParams test_radio() {
  channel::RadioParams r;
  r.noise_density = 4.32e-21;
  r.decoding_threshold_db = 25.9;
  r.path_loss_exponent = 2.0;
  r.epsilon = 0.01;
  r.w_max = support::kInf;
  return r;
}

trace::ContactTrace test_trace() {
  trace::ContactTrace t(3, 100.0);
  t.add({0, 1, 0.0, 50.0, 2.0});
  t.add({0, 1, 60.0, 90.0, 4.0});  // same pair, farther later
  t.add({1, 2, 20.0, 80.0, 3.0});
  t.sort();
  return t;
}

TEST(Tveg, DistanceProfileFollowsContacts) {
  Tveg tveg(test_trace(), test_radio(),
            {.model = channel::ChannelModel::kStep});
  EXPECT_DOUBLE_EQ(tveg.distance(0, 1, 10.0), 2.0);
  EXPECT_DOUBLE_EQ(tveg.distance(0, 1, 70.0), 4.0);
  EXPECT_DOUBLE_EQ(tveg.distance(1, 2, 30.0), 3.0);
  EXPECT_THROW(tveg.distance(0, 2, 30.0), std::invalid_argument);
}

TEST(Tveg, StepFailureProbabilityIsBinary) {
  Tveg tveg(test_trace(), test_radio(),
            {.model = channel::ChannelModel::kStep});
  const Cost w = tveg.radio().step_min_cost(2.0);
  EXPECT_DOUBLE_EQ(tveg.failure_probability(0, 1, 10.0, w), 0.0);
  EXPECT_DOUBLE_EQ(tveg.failure_probability(0, 1, 10.0, w * 0.99), 1.0);
}

TEST(Tveg, FailureIsOneWhenNotAdjacent) {
  Tveg tveg(test_trace(), test_radio(),
            {.model = channel::ChannelModel::kStep});
  // Property 3.1(iii): edge absent → φ = 1 regardless of cost.
  EXPECT_DOUBLE_EQ(tveg.failure_probability(0, 1, 55.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(tveg.failure_probability(0, 2, 10.0, 1.0), 1.0);
}

TEST(Tveg, RayleighFailureMatchesFormula) {
  Tveg tveg(test_trace(), test_radio(),
            {.model = channel::ChannelModel::kRayleigh});
  const double beta = tveg.radio().rayleigh_beta(2.0);
  const Cost w = beta * 3.0;
  EXPECT_NEAR(tveg.failure_probability(0, 1, 10.0, w),
              1.0 - std::exp(-1.0 / 3.0), 1e-12);
}

TEST(Tveg, EdgeWeightStepIsMinimumDecodableCost) {
  Tveg tveg(test_trace(), test_radio(),
            {.model = channel::ChannelModel::kStep});
  EXPECT_NEAR(tveg.edge_weight(0, 1, 10.0), tveg.radio().step_min_cost(2.0),
              1e-30);
  EXPECT_TRUE(std::isinf(tveg.edge_weight(0, 1, 55.0)));
}

TEST(Tveg, EdgeWeightRayleighIsEpsilonCost) {
  Tveg tveg(test_trace(), test_radio(),
            {.model = channel::ChannelModel::kRayleigh});
  const double beta = tveg.radio().rayleigh_beta(2.0);
  EXPECT_NEAR(tveg.edge_weight(0, 1, 10.0), beta / std::log(1 / 0.99), 1e-25);
  // Fading ε-cost is ~100× the step cost at ε = 0.01.
  Tveg step(test_trace(), test_radio(),
            {.model = channel::ChannelModel::kStep});
  EXPECT_GT(tveg.edge_weight(0, 1, 10.0), 90 * step.edge_weight(0, 1, 10.0));
}

TEST(Tveg, DiscreteCostSetSortedAscending) {
  Tveg tveg(test_trace(), test_radio(),
            {.model = channel::ChannelModel::kStep});
  const auto dcs = tveg.discrete_cost_set(1, 30.0);
  ASSERT_EQ(dcs.size(), 2u);  // neighbors 0 (d=2) and 2 (d=3)
  EXPECT_EQ(dcs[0].neighbor, 0);
  EXPECT_EQ(dcs[1].neighbor, 2);
  EXPECT_LT(dcs[0].cost, dcs[1].cost);
}

TEST(Tveg, DiscreteCostSetEmptyWhenIsolated) {
  Tveg tveg(test_trace(), test_radio(),
            {.model = channel::ChannelModel::kStep});
  EXPECT_TRUE(tveg.discrete_cost_set(2, 90.0).empty());
}

TEST(Tveg, ChannelBreakpointsAtProfileChanges) {
  Tveg tveg(test_trace(), test_radio(),
            {.model = channel::ChannelModel::kStep});
  const auto bp = tveg.channel_breakpoints();
  ASSERT_EQ(bp.size(), 3u);
  // Edge 0-1 changes distance at t = 60 → breakpoint on nodes 0 and 1.
  EXPECT_EQ(bp[0], (std::vector<Time>{60.0}));
  EXPECT_EQ(bp[1], (std::vector<Time>{60.0}));
  EXPECT_TRUE(bp[2].empty());
}

TEST(Tveg, BuildDtsIncludesChannelBreakpoints) {
  Tveg tveg(test_trace(), test_radio(),
            {.model = channel::ChannelModel::kStep});
  const auto dts = tveg.build_dts();
  EXPECT_TRUE(dts.contains(0, 60.0));
  EXPECT_TRUE(dts.contains(1, 60.0));
}

TEST(Tveg, NakagamiAndRicianModelsMaterialize) {
  Tveg nak(test_trace(), test_radio(),
           {.model = channel::ChannelModel::kNakagami,
            .tau = 0.0,
            .nakagami_m = 2.0});
  Tveg ric(test_trace(), test_radio(),
           {.model = channel::ChannelModel::kRician,
            .tau = 0.0,
            .rician_k = 3.0});
  const double pn = nak.failure_probability(0, 1, 10.0, 1e-15);
  const double pr = ric.failure_probability(0, 1, 10.0, 1e-15);
  EXPECT_GT(pn, 0.0);
  EXPECT_LT(pn, 1.0);
  EXPECT_GT(pr, 0.0);
  EXPECT_LT(pr, 1.0);
}

TEST(Tveg, EdFunctionRequiresAdjacency) {
  Tveg tveg(test_trace(), test_radio(),
            {.model = channel::ChannelModel::kStep});
  EXPECT_THROW(tveg.ed_function(0, 1, 55.0), std::invalid_argument);
}

TEST(Tveg, LatencyShrinksAdjacency) {
  Tveg tveg(test_trace(), test_radio(),
            {.model = channel::ChannelModel::kStep, .tau = 5.0});
  EXPECT_DOUBLE_EQ(tveg.latency(), 5.0);
  EXPECT_TRUE(tveg.graph().adjacent(0, 1, 44.0));
  EXPECT_FALSE(tveg.graph().adjacent(0, 1, 46.0));  // 46+5 > 50
}

}  // namespace
}  // namespace tveg::core
