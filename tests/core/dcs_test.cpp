// Property 6.1 and Proposition 6.1 as executable checks: discrete cost sets
// capture everything a transmission can do — any cost rounds down to a DCS
// element without changing the informed set.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/baselines.hpp"
#include "core/schedule.hpp"
#include "support/math.hpp"
#include "trace/generators.hpp"

namespace tveg::core {
namespace {

channel::RadioParams unit_radio() {
  channel::RadioParams r;
  r.noise_density = 1.0;
  r.decoding_threshold_db = 0.0;
  r.path_loss_exponent = 2.0;
  r.epsilon = 0.01;
  r.w_max = support::kInf;
  return r;
}

/// Star: source 0 with neighbors at distances 1, 2, 3 (costs 1, 4, 9).
Tveg star() {
  trace::ContactTrace t(4, 10.0);
  t.add({0, 1, 0.0, 10.0, 1.0});
  t.add({0, 2, 0.0, 10.0, 2.0});
  t.add({0, 3, 0.0, 10.0, 3.0});
  return Tveg(t, unit_radio(), {.model = channel::ChannelModel::kStep});
}

/// Nodes informed by a single broadcast from `relay` at cost w.
std::vector<NodeId> informed_by(const Tveg& tveg, NodeId relay, Cost w) {
  const TmedbInstance inst{&tveg, relay, 10.0};
  Schedule s;
  s.add(relay, 1.0, w);
  const auto p = uninformed_probabilities(inst, s, 10.0);
  std::vector<NodeId> out;
  for (NodeId v = 0; v < tveg.node_count(); ++v)
    if (p[static_cast<std::size_t>(v)] <= 0.01) out.push_back(v);
  return out;
}

TEST(Dcs, BroadcastNatureLevelKInformsPrefix) {
  const Tveg tveg = star();
  const auto dcs = tveg.discrete_cost_set(0, 1.0);
  ASSERT_EQ(dcs.size(), 3u);
  // Property 6.1(i): paying level k informs neighbors 1..k.
  EXPECT_EQ(informed_by(tveg, 0, dcs[0].cost), (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(informed_by(tveg, 0, dcs[1].cost),
            (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(informed_by(tveg, 0, dcs[2].cost),
            (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(Dcs, IntermediateCostEquivalentToLevelBelow) {
  const Tveg tveg = star();
  const auto dcs = tveg.discrete_cost_set(0, 1.0);
  // Property 6.1(ii): any w ∈ [w_k, w_{k+1}) informs the same set as w_k.
  for (std::size_t k = 0; k + 1 < dcs.size(); ++k) {
    const Cost mid = 0.5 * (dcs[k].cost + dcs[k + 1].cost);
    EXPECT_EQ(informed_by(tveg, 0, mid), informed_by(tveg, 0, dcs[k].cost));
  }
  // Above the top level nothing changes either.
  EXPECT_EQ(informed_by(tveg, 0, dcs.back().cost * 10),
            informed_by(tveg, 0, dcs.back().cost));
}

TEST(Dcs, RoundingScheduleDownToDcsPreservesFeasibility) {
  // Proposition 6.1 on whole schedules over random temporal graphs.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    trace::SnapshotConfig cfg;
    cfg.nodes = 7;
    cfg.slot = 25;
    cfg.horizon = 150;
    cfg.p = 0.35;
    cfg.seed = seed;
    const Tveg tveg(trace::generate_snapshots(cfg), unit_radio(),
                    {.model = channel::ChannelModel::kStep});
    const TmedbInstance inst{&tveg, 0, 150.0};
    const auto base = run_baseline(inst, {.rule = BaselineRule::kGreedy});
    if (!base.covered_all) continue;

    // Inflate every cost off the DCS, then round back down to the largest
    // DCS element not exceeding it.
    Schedule inflated, rounded;
    for (const Transmission& tx : base.schedule.transmissions()) {
      const Cost off_dcs = tx.cost * 1.37;
      inflated.add(tx.relay, tx.time, off_dcs);
      const auto dcs = tveg.discrete_cost_set(tx.relay, tx.time);
      Cost down = 0;
      for (const DcsEntry& e : dcs)
        if (e.cost <= off_dcs) down = std::max(down, e.cost);
      ASSERT_GT(down, 0.0);
      rounded.add(tx.relay, tx.time, down);
    }
    ASSERT_TRUE(check_feasibility(inst, inflated).feasible) << "seed " << seed;
    EXPECT_TRUE(check_feasibility(inst, rounded).feasible) << "seed " << seed;
    EXPECT_LE(rounded.total_cost(), inflated.total_cost());
  }
}

TEST(Dcs, CostsFollowDistanceOrdering) {
  const Tveg tveg = star();
  const auto dcs = tveg.discrete_cost_set(0, 1.0);
  ASSERT_EQ(dcs.size(), 3u);
  EXPECT_DOUBLE_EQ(dcs[0].cost, 1.0);
  EXPECT_DOUBLE_EQ(dcs[1].cost, 4.0);
  EXPECT_DOUBLE_EQ(dcs[2].cost, 9.0);
}

}  // namespace
}  // namespace tveg::core
