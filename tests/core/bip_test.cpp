#include "core/bip.hpp"

#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "core/brute_force.hpp"
#include "support/math.hpp"
#include "trace/generators.hpp"

namespace tveg::core {
namespace {

channel::RadioParams unit_radio() {
  channel::RadioParams r;
  r.noise_density = 1.0;
  r.decoding_threshold_db = 0.0;
  r.path_loss_exponent = 2.0;
  r.epsilon = 0.01;
  r.w_max = support::kInf;
  return r;
}

TEST(Bip, SingleHopStarUsesIncrementalLevels) {
  trace::ContactTrace t(4, 10.0);
  t.add({0, 1, 0.0, 10.0, 1.0});
  t.add({0, 2, 0.0, 10.0, 2.0});
  t.add({0, 3, 0.0, 10.0, 3.0});
  const Tveg tveg(t, unit_radio(), {.model = channel::ChannelModel::kStep});
  const TmedbInstance inst{&tveg, 0, 10.0};
  const auto r = run_bip(inst);
  ASSERT_TRUE(r.covered_all);
  // Increments 1, then 4−1, then 9−4 — one transmission at the top level.
  ASSERT_EQ(r.schedule.size(), 1u);
  EXPECT_DOUBLE_EQ(r.schedule.total_cost(), 9.0);
  EXPECT_TRUE(check_feasibility(inst, r.schedule).feasible);
}

TEST(Bip, PrefersCheapRelayOverPowerRaise) {
  // Raising 0's power to reach 2 directly costs 9 − 1 = 8; relaying via 1
  // costs 1. BIP must relay.
  trace::ContactTrace t(3, 10.0);
  t.add({0, 1, 0.0, 10.0, 1.0});
  t.add({0, 2, 0.0, 10.0, 3.0});
  t.add({1, 2, 0.0, 10.0, 1.0});
  const Tveg tveg(t, unit_radio(), {.model = channel::ChannelModel::kStep});
  const TmedbInstance inst{&tveg, 0, 10.0};
  const auto r = run_bip(inst);
  ASSERT_TRUE(r.covered_all);
  EXPECT_DOUBLE_EQ(r.schedule.total_cost(), 2.0);  // 0→1 (1) + 1→2 (1)
  EXPECT_TRUE(check_feasibility(inst, r.schedule).feasible);
}

TEST(Bip, WaitsForLaterContacts) {
  trace::ContactTrace t(3, 100.0);
  t.add({0, 1, 0.0, 20.0, 1.0});
  t.add({1, 2, 50.0, 80.0, 1.0});
  const Tveg tveg(t, unit_radio(), {.model = channel::ChannelModel::kStep});
  const TmedbInstance inst{&tveg, 0, 100.0};
  const auto r = run_bip(inst);
  ASSERT_TRUE(r.covered_all);
  ASSERT_EQ(r.schedule.size(), 2u);
  EXPECT_GE(r.schedule.transmissions()[1].time, 50.0);
  EXPECT_TRUE(check_feasibility(inst, r.schedule).feasible);
}

TEST(Bip, RespectsDeadline) {
  trace::ContactTrace t(3, 100.0);
  t.add({0, 1, 0.0, 20.0, 1.0});
  t.add({1, 2, 50.0, 80.0, 1.0});
  const Tveg tveg(t, unit_radio(), {.model = channel::ChannelModel::kStep});
  const TmedbInstance inst{&tveg, 0, 40.0};
  const auto r = run_bip(inst);
  EXPECT_FALSE(r.covered_all);
  for (const auto& tx : r.schedule.transmissions())
    EXPECT_LE(tx.time, 40.0 + 1e-9);
}

TEST(Bip, FeasibleAndBoundedOnRandomInstances) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    trace::SnapshotConfig cfg;
    cfg.nodes = 7;
    cfg.slot = 25;
    cfg.horizon = 175;
    cfg.p = 0.3;
    cfg.seed = seed;
    const Tveg tveg(trace::generate_snapshots(cfg), unit_radio(),
                    {.model = channel::ChannelModel::kStep});
    const TmedbInstance inst{&tveg, 0, 175.0};
    const auto opt = brute_force_optimal(inst);
    const auto bip = run_bip(inst);
    ASSERT_EQ(bip.covered_all, opt.feasible) << "seed " << seed;
    if (!opt.feasible) continue;
    EXPECT_TRUE(check_feasibility(inst, bip.schedule).feasible)
        << "seed " << seed;
    EXPECT_GE(bip.schedule.total_cost(), opt.cost - 1e-9) << "seed " << seed;
  }
}

TEST(Bip, BroadcastOnly) {
  trace::ContactTrace t(2, 10.0);
  t.add({0, 1, 0.0, 10.0, 1.0});
  const Tveg tveg(t, unit_radio(), {.model = channel::ChannelModel::kStep});
  TmedbInstance inst{&tveg, 0, 10.0};
  inst.targets = {1};
  EXPECT_THROW(run_bip(inst), std::invalid_argument);
}

}  // namespace
}  // namespace tveg::core
