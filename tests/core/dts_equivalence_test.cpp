// Executable validation of the paper's Sec. V theory: restricting TMEDB to
// the discrete time set loses nothing (Theorem 5.2), because any feasible
// schedule can be shifted to earliest transmission times (ET-law,
// Prop. 5.1) without changing cost or feasibility.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/brute_force.hpp"
#include "core/eedcb.hpp"
#include "support/math.hpp"
#include "trace/generators.hpp"

namespace tveg::core {
namespace {

channel::RadioParams unit_radio() {
  channel::RadioParams r;
  r.noise_density = 1.0;
  r.decoding_threshold_db = 0.0;
  r.path_loss_exponent = 2.0;
  r.epsilon = 0.01;
  r.w_max = support::kInf;
  return r;
}

Tveg random_step_tveg(std::uint64_t seed, NodeId nodes = 5) {
  trace::SnapshotConfig cfg;
  cfg.nodes = nodes;
  cfg.slot = 25;
  cfg.horizon = 150;
  cfg.p = 0.35;
  cfg.min_distance = 1.0;
  cfg.max_distance = 4.0;
  cfg.seed = seed;
  return Tveg(trace::generate_snapshots(cfg), unit_radio(),
              {.model = channel::ChannelModel::kStep});
}

/// Theorem 5.2, empirical form: the optimum restricted to DTS time points
/// equals the optimum over a much finer candidate grid. (The optimum over
/// ALL continuous times is not enumerable, but any violation of the theorem
/// would show up as a cheaper schedule on the refinement.)
TEST(DtsEquivalence, OptimumOnDtsEqualsOptimumOnRefinedGrid) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Tveg tveg = random_step_tveg(seed);
    const TmedbInstance inst{&tveg, 0, 150.0};
    const auto dts = tveg.build_dts();

    const BruteForceResult on_dts =
        brute_force_optimal(inst, dts.global_points());

    // Refinement: DTS points plus a uniform grid of 150 extra candidates.
    std::vector<Time> refined = dts.global_points();
    for (int i = 0; i < 150; ++i) refined.push_back(i * 1.0);
    const BruteForceResult on_refined = brute_force_optimal(inst, refined);

    ASSERT_EQ(on_dts.feasible, on_refined.feasible) << "seed " << seed;
    if (!on_dts.feasible) continue;
    EXPECT_NEAR(on_dts.cost, on_refined.cost, 1e-9) << "seed " << seed;
  }
}

/// A mid-interval grid strictly between DTS points can't beat the DTS even
/// on a deliberately adversarial instance with staggered contacts.
TEST(DtsEquivalence, MidIntervalTimesGiveNoAdvantage) {
  trace::ContactTrace t(4, 100.0);
  t.add({0, 1, 10.0, 30.0, 1.0});
  t.add({0, 2, 20.0, 50.0, 2.0});
  t.add({1, 3, 25.0, 60.0, 1.5});
  t.add({2, 3, 55.0, 90.0, 1.0});
  const Tveg tveg(t, unit_radio(), {.model = channel::ChannelModel::kStep});
  const TmedbInstance inst{&tveg, 0, 100.0};
  const auto dts = tveg.build_dts();

  const BruteForceResult on_dts =
      brute_force_optimal(inst, dts.global_points());
  std::vector<Time> dense;
  for (double x = 0; x <= 100.0; x += 0.5) dense.push_back(x);
  const BruteForceResult on_dense = brute_force_optimal(inst, dense);

  ASSERT_TRUE(on_dts.feasible);
  ASSERT_TRUE(on_dense.feasible);
  EXPECT_NEAR(on_dts.cost, on_dense.cost, 1e-9);
}

/// ET-law (Prop. 5.1): pushing any transmission of a feasible schedule to
/// the start of its DTS interval (not earlier than the relay's informed
/// time) preserves feasibility and cost.
TEST(EtLaw, ShiftToIntervalStartPreservesFeasibility) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Tveg tveg = random_step_tveg(seed);
    const TmedbInstance inst{&tveg, 0, 150.0};
    const SchedulerResult r = run_eedcb(inst);
    if (!r.covered_all) continue;
    ASSERT_TRUE(check_feasibility(inst, r.schedule).feasible);

    // Perturb: move every transmission later within its adjacency interval
    // (still before the interval's end and before any contact change), then
    // shift back per ET-law. Both steps must preserve feasibility; the
    // ET-law shift restores the original cost.
    const auto dts = tveg.build_dts();
    Schedule perturbed;
    for (const Transmission& tx : r.schedule.transmissions()) {
      const auto& pts = dts.points(tx.relay);
      auto it = std::upper_bound(pts.begin(), pts.end(), tx.time + 1e-9);
      const Time interval_end = it == pts.end() ? tveg.horizon() : *it;
      // Nudge 10% into the interval (bounded by the deadline).
      const Time nudged = std::min(
          tx.time + 0.1 * (interval_end - tx.time), inst.deadline);
      perturbed.add(tx.relay, nudged, tx.cost);
    }
    // ET-law shift: move each transmission back to its interval start.
    Schedule shifted;
    for (const Transmission& tx : perturbed.transmissions()) {
      const auto& pts = dts.points(tx.relay);
      auto it = std::upper_bound(pts.begin(), pts.end(), tx.time + 1e-9);
      ASSERT_NE(it, pts.begin());
      shifted.add(tx.relay, *(it - 1), tx.cost);
    }
    const auto report = check_feasibility(inst, shifted);
    EXPECT_TRUE(report.feasible) << "seed " << seed << ": " << report.reason;
    EXPECT_DOUBLE_EQ(shifted.total_cost(), r.schedule.total_cost());
  }
}

/// The aux-graph pipeline (EEDCB) only schedules at DTS points — the
/// structural property Sec. VI-A relies on.
TEST(DtsEquivalence, EedcbSchedulesOnDtsPointsOnly) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Tveg tveg = random_step_tveg(seed, 6);
    const TmedbInstance inst{&tveg, 0, 150.0};
    const auto dts = tveg.build_dts();
    const SchedulerResult r = run_eedcb(inst, dts);
    for (const Transmission& tx : r.schedule.transmissions())
      EXPECT_TRUE(dts.contains(tx.relay, tx.time))
          << "seed " << seed << " relay " << tx.relay << " t " << tx.time;
  }
}

}  // namespace
}  // namespace tveg::core
