#include "core/brute_force.hpp"

#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "core/eedcb.hpp"
#include "support/math.hpp"
#include "trace/generators.hpp"

namespace tveg::core {
namespace {

channel::RadioParams unit_radio() {
  // Unit-cost radio: N0 = 1, γ_th = 0 dB (= 1 linear), α = 2 → step cost
  // between nodes at distance d is exactly d².
  channel::RadioParams r;
  r.noise_density = 1.0;
  r.decoding_threshold_db = 0.0;
  r.path_loss_exponent = 2.0;
  r.epsilon = 0.01;
  r.w_max = support::kInf;
  return r;
}

TEST(BruteForce, TrivialTwoNodeInstance) {
  trace::ContactTrace t(2, 10.0);
  t.add({0, 1, 0.0, 10.0, 2.0});
  const Tveg tveg(t, unit_radio(), {.model = channel::ChannelModel::kStep});
  const TmedbInstance inst{&tveg, 0, 10.0};
  const BruteForceResult r = brute_force_optimal(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.cost, 4.0);  // d² = 4
  EXPECT_EQ(r.schedule.size(), 1u);
  EXPECT_TRUE(check_feasibility(inst, r.schedule).feasible);
}

TEST(BruteForce, BroadcastAdvantageBeatsTwoUnicasts) {
  trace::ContactTrace t(3, 10.0);
  t.add({0, 1, 0.0, 10.0, 1.0});
  t.add({0, 2, 0.0, 10.0, 2.0});
  const Tveg tveg(t, unit_radio(), {.model = channel::ChannelModel::kStep});
  const TmedbInstance inst{&tveg, 0, 10.0};
  const BruteForceResult r = brute_force_optimal(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.cost, 4.0);  // one tx at the far cost, not 1 + 4
}

TEST(BruteForce, RelayCheaperThanDirect) {
  // 0 at distance 3 from 2 directly (cost 9), but via 1: 1 + 1 = 2... with
  // the relay path available only through time-staggered contacts.
  trace::ContactTrace t(3, 10.0);
  t.add({0, 2, 0.0, 10.0, 3.0});
  t.add({0, 1, 0.0, 5.0, 1.0});
  t.add({1, 2, 5.0, 10.0, 1.0});
  const Tveg tveg(t, unit_radio(), {.model = channel::ChannelModel::kStep});
  const TmedbInstance inst{&tveg, 0, 10.0};
  const BruteForceResult r = brute_force_optimal(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.cost, 2.0);
  EXPECT_EQ(r.schedule.size(), 2u);
}

TEST(BruteForce, TightDeadlineForcesExpensiveDirect) {
  trace::ContactTrace t(3, 10.0);
  t.add({0, 2, 0.0, 10.0, 3.0});
  t.add({0, 1, 0.0, 5.0, 1.0});
  t.add({1, 2, 5.0, 10.0, 1.0});
  const Tveg tveg(t, unit_radio(), {.model = channel::ChannelModel::kStep});
  const TmedbInstance inst{&tveg, 0, 4.0};  // relay contact opens too late
  const BruteForceResult r = brute_force_optimal(inst);
  ASSERT_TRUE(r.feasible);
  // One broadcast at the far cost reaches node 1 too (broadcast nature):
  // 9, versus 2 with the relay path available (see RelayCheaperThanDirect).
  EXPECT_DOUBLE_EQ(r.cost, 9.0);
  EXPECT_EQ(r.schedule.size(), 1u);
}

TEST(BruteForce, InfeasibleWhenDisconnected) {
  trace::ContactTrace t(3, 10.0);
  t.add({0, 1, 0.0, 10.0, 1.0});
  const Tveg tveg(t, unit_radio(), {.model = channel::ChannelModel::kStep});
  const TmedbInstance inst{&tveg, 0, 10.0};
  const BruteForceResult r = brute_force_optimal(inst);
  EXPECT_FALSE(r.feasible);
}

TEST(BruteForce, RequiresStepModelAndZeroTau) {
  trace::ContactTrace t(2, 10.0);
  t.add({0, 1, 0.0, 10.0, 1.0});
  const Tveg fading(t, unit_radio(),
                    {.model = channel::ChannelModel::kRayleigh});
  const TmedbInstance bad_model{&fading, 0, 10.0};
  EXPECT_THROW(brute_force_optimal(bad_model), std::invalid_argument);

  const Tveg latency(t, unit_radio(),
                     {.model = channel::ChannelModel::kStep, .tau = 1.0});
  const TmedbInstance bad_tau{&latency, 0, 10.0};
  EXPECT_THROW(brute_force_optimal(bad_tau), std::invalid_argument);
}

TEST(BruteForce, LowerBoundsHeuristicsOnRandomInstances) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    trace::SnapshotConfig cfg;
    cfg.nodes = 6;
    cfg.slot = 20;
    cfg.horizon = 200;
    cfg.p = 0.3;
    cfg.seed = seed;
    const Tveg tveg(trace::generate_snapshots(cfg), unit_radio(),
                    {.model = channel::ChannelModel::kStep});
    const TmedbInstance inst{&tveg, 0, 200.0};
    const BruteForceResult opt = brute_force_optimal(inst);
    const SchedulerResult eedcb = run_eedcb(inst);
    const SchedulerResult greed =
        run_baseline(inst, {.rule = BaselineRule::kGreedy});
    ASSERT_EQ(opt.feasible, eedcb.covered_all) << "seed " << seed;
    if (!opt.feasible) continue;
    EXPECT_LE(opt.cost, eedcb.schedule.total_cost() + 1e-9) << "seed " << seed;
    EXPECT_LE(opt.cost, greed.schedule.total_cost() + 1e-9) << "seed " << seed;
    EXPECT_TRUE(check_feasibility(inst, opt.schedule).feasible)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace tveg::core
