#include "core/fr.hpp"

#include <gtest/gtest.h>

#include "support/math.hpp"
#include "trace/generators.hpp"

namespace tveg::core {
namespace {

channel::RadioParams test_radio() {
  channel::RadioParams r;
  r.epsilon = 0.01;
  r.w_max = support::kInf;
  return r;
}

Tveg fading_tveg(std::uint64_t seed, NodeId nodes = 12) {
  trace::HaggleLikeConfig cfg;
  cfg.nodes = nodes;
  cfg.horizon = 8000;
  cfg.activation_ramp_end = 500;
  cfg.pair_probability = 0.6;
  cfg.seed = seed;
  return Tveg(trace::generate_haggle_like(cfg), test_radio(),
              {.model = channel::ChannelModel::kRayleigh});
}

TEST(FrEedcb, RefinementNeverIncreasesCost) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const Tveg tveg = fading_tveg(seed);
    const TmedbInstance inst{&tveg, 0, 6000.0};
    const auto dts = tveg.build_dts();
    FrOptions raw;
    raw.refine_backbone = false;
    raw.multi_start = false;
    FrOptions refined;
    refined.refine_backbone = true;
    refined.multi_start = false;
    const auto r_raw = run_fr_eedcb(inst, dts, {}, {}, raw);
    const auto r_ref = run_fr_eedcb(inst, dts, {}, {}, refined);
    if (!r_raw.feasible()) continue;
    ASSERT_TRUE(r_ref.feasible()) << "seed " << seed;
    EXPECT_LE(r_ref.schedule().total_cost(),
              r_raw.schedule().total_cost() + 1e-30)
        << "seed " << seed;
  }
}

TEST(FrEedcb, MultiStartNeverIncreasesCost) {
  for (std::uint64_t seed : {1u, 4u, 5u}) {
    const Tveg tveg = fading_tveg(seed);
    const TmedbInstance inst{&tveg, 0, 6000.0};
    const auto dts = tveg.build_dts();
    FrOptions single;
    single.multi_start = false;
    FrOptions multi;
    multi.multi_start = true;
    const auto r_single = run_fr_eedcb(inst, dts, {}, {}, single);
    const auto r_multi = run_fr_eedcb(inst, dts, {}, {}, multi);
    if (!r_single.feasible()) continue;
    ASSERT_TRUE(r_multi.feasible()) << "seed " << seed;
    EXPECT_LE(r_multi.schedule().total_cost(),
              r_single.schedule().total_cost() + 1e-30)
        << "seed " << seed;
  }
}

TEST(FrEedcb, RefinedScheduleStaysFeasible) {
  const Tveg tveg = fading_tveg(7);
  const TmedbInstance inst{&tveg, 0, 6000.0};
  const auto r = run_fr_eedcb(inst);
  ASSERT_TRUE(r.feasible());
  const auto report = check_feasibility(inst, r.schedule());
  EXPECT_TRUE(report.feasible) << report.reason;
  // The refined backbone and the allocation agree in size.
  EXPECT_EQ(r.backbone.schedule.size(), r.allocation.schedule.size());
}

TEST(FrEedcb, AllocatedCostsAreFiniteAndPositive) {
  const Tveg tveg = fading_tveg(8);
  const TmedbInstance inst{&tveg, 0, 6000.0};
  const auto r = run_fr_eedcb(inst);
  ASSERT_TRUE(r.feasible());
  for (const Transmission& tx : r.schedule().transmissions()) {
    EXPECT_GT(tx.cost, 0.0);
    EXPECT_TRUE(std::isfinite(tx.cost));
  }
}

TEST(FrBaseline, GreedBackboneKeptVerbatim) {
  // FR-GREED must not silently optimize the backbone: relays and times are
  // exactly GREED's, only the costs change.
  const Tveg tveg = fading_tveg(9);
  const TmedbInstance inst{&tveg, 0, 6000.0};
  const auto dts = tveg.build_dts();
  BaselineOptions opt;
  opt.rule = BaselineRule::kGreedy;
  const auto backbone = run_baseline(inst, dts, opt);
  const auto fr = run_fr_baseline(inst, dts, opt);
  ASSERT_TRUE(fr.feasible());
  const auto& raw = backbone.schedule.transmissions();
  const auto& alloc = fr.schedule().transmissions();
  ASSERT_EQ(raw.size(), alloc.size());
  for (std::size_t k = 0; k < raw.size(); ++k) {
    EXPECT_EQ(raw[k].relay, alloc[k].relay);
    EXPECT_DOUBLE_EQ(raw[k].time, alloc[k].time);
  }
}

TEST(FrEedcb, InfeasibleWhenSourceIsolated) {
  trace::ContactTrace t(3, 100.0);
  t.add({1, 2, 0.0, 100.0, 1.0});  // source 0 never meets anyone
  const Tveg tveg(t, test_radio(),
                  {.model = channel::ChannelModel::kRayleigh});
  const TmedbInstance inst{&tveg, 0, 100.0};
  const auto r = run_fr_eedcb(inst);
  EXPECT_FALSE(r.feasible());
}

}  // namespace
}  // namespace tveg::core
