// Channel variation *within* a contact (DESIGN.md, interpretive decision
// 5): when a pair stays connected but its distance changes, the breakpoint
// must enter the DTS so the scheduler can react — e.g. wait for the pair to
// get closer and transmit cheaper.
#include <gtest/gtest.h>

#include "core/eedcb.hpp"
#include "support/math.hpp"

namespace tveg::core {
namespace {

channel::RadioParams unit_radio() {
  channel::RadioParams r;
  r.noise_density = 1.0;
  r.decoding_threshold_db = 0.0;
  r.path_loss_exponent = 2.0;
  r.epsilon = 0.01;
  r.w_max = support::kInf;
  return r;
}

/// 0 and 1 are continuously connected on [0, 100), but far (d = 5) until
/// t = 50 and close (d = 1) afterwards: abutting contacts with different
/// distances merge into one presence interval with a channel breakpoint.
Tveg approaching_pair() {
  trace::ContactTrace t(2, 100.0);
  t.add({0, 1, 0.0, 50.0, 5.0});
  t.add({0, 1, 50.0, 100.0, 1.0});
  return Tveg(t, unit_radio(), {.model = channel::ChannelModel::kStep});
}

TEST(ChannelBreakpoint, PresenceMergesButWeightChanges) {
  const Tveg tveg = approaching_pair();
  // One merged presence interval...
  EXPECT_EQ(tveg.graph().presence(0, 1).size(), 1u);
  // ...but the edge weight drops at the breakpoint (25 = 5², 1 = 1²).
  EXPECT_DOUBLE_EQ(tveg.edge_weight(0, 1, 25.0), 25.0);
  EXPECT_DOUBLE_EQ(tveg.edge_weight(0, 1, 60.0), 1.0);
}

TEST(ChannelBreakpoint, BreakpointEntersDts) {
  const Tveg tveg = approaching_pair();
  const auto dts = tveg.build_dts();
  EXPECT_TRUE(dts.contains(0, 50.0));
  EXPECT_TRUE(dts.contains(1, 50.0));
}

TEST(ChannelBreakpoint, EedcbWaitsForTheCheapMoment) {
  const Tveg tveg = approaching_pair();
  const TmedbInstance loose{&tveg, 0, 100.0};
  const auto r = run_eedcb(loose);
  ASSERT_TRUE(r.covered_all);
  ASSERT_EQ(r.schedule.size(), 1u);
  // With time to spare, transmit after t = 50 at cost 1 instead of 25.
  EXPECT_GE(r.schedule.transmissions()[0].time, 50.0);
  EXPECT_DOUBLE_EQ(r.schedule.total_cost(), 1.0);
}

TEST(ChannelBreakpoint, TightDeadlineForcesTheExpensiveMoment) {
  const Tveg tveg = approaching_pair();
  const TmedbInstance tight{&tveg, 0, 30.0};
  const auto r = run_eedcb(tight);
  ASSERT_TRUE(r.covered_all);
  EXPECT_DOUBLE_EQ(r.schedule.total_cost(), 25.0);
  EXPECT_TRUE(check_feasibility(tight, r.schedule).feasible);
}

TEST(ChannelBreakpoint, FeasibilityUsesTimeCorrectWeights) {
  const Tveg tveg = approaching_pair();
  const TmedbInstance inst{&tveg, 0, 100.0};
  // Cost 1 at t = 25 (still far) does NOT inform node 1...
  Schedule cheap_too_early;
  cheap_too_early.add(0, 25.0, 1.0);
  EXPECT_FALSE(check_feasibility(inst, cheap_too_early).feasible);
  // ...but the same cost at t = 60 (close) does.
  Schedule cheap_later;
  cheap_later.add(0, 60.0, 1.0);
  EXPECT_TRUE(check_feasibility(inst, cheap_later).feasible);
}

}  // namespace
}  // namespace tveg::core
