#include "core/schedule.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "support/math.hpp"

namespace tveg::core {
namespace {

channel::RadioParams test_radio() {
  channel::RadioParams r;
  r.epsilon = 0.01;
  r.w_max = support::kInf;
  return r;
}

/// Line 0-1-2 always connected at unit distances; step channel; τ = 0.
Tveg line_tveg(channel::ChannelModel model = channel::ChannelModel::kStep,
               Time tau = 0.0) {
  trace::ContactTrace t(3, 100.0);
  t.add({0, 1, 0.0, 100.0, 1.0});
  t.add({1, 2, 0.0, 100.0, 1.0});
  return Tveg(t, test_radio(), {.model = model, .tau = tau});
}

TEST(Schedule, SortsByTime) {
  Schedule s;
  s.add(1, 5.0, 2.0);
  s.add(0, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(s.transmissions()[0].time, 1.0);
  EXPECT_DOUBLE_EQ(s.transmissions()[1].time, 5.0);
}

TEST(Schedule, CostAndLatency) {
  Schedule s;
  s.add(0, 1.0, 1.5);
  s.add(1, 5.0, 2.5);
  EXPECT_DOUBLE_EQ(s.total_cost(), 4.0);
  EXPECT_DOUBLE_EQ(s.latest_finish(2.0), 7.0);
  EXPECT_DOUBLE_EQ(Schedule{}.total_cost(), 0.0);
}

TEST(Schedule, CoalesceKeepsMaxCost) {
  Schedule s;
  s.add(0, 1.0, 1.0);
  s.add(0, 1.0, 3.0);
  s.add(0, 2.0, 1.0);
  s.coalesce();
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.transmissions()[0].cost, 3.0);
}

TEST(Schedule, RejectsNegativeInputs) {
  Schedule s;
  EXPECT_THROW(s.add(0, -1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(s.add(0, 1.0, -1.0), std::invalid_argument);
}

TEST(Schedule, StreamOutput) {
  Schedule s;
  s.add(0, 1.0, 2.0);
  std::ostringstream os;
  os << s;
  EXPECT_NE(os.str().find("relay=0"), std::string::npos);
}

// Fuzz-surfaced regression: an out-of-range relay id (a hostile schedule
// file fed to `tmedb evaluate`) used to read past the end of the cascade's
// probability array. The cascade now rejects it up front and the
// feasibility checker reports it as an infeasibility, not a crash.
TEST(Schedule, OutOfRangeRelayIsRejectedNotUndefined) {
  const Tveg tveg = line_tveg();
  TmedbInstance instance{&tveg, 0, 50.0};
  Schedule bad;
  bad.add(99999, 10.0, 5.0);
  EXPECT_THROW(run_cascade(instance, bad, 50.0), std::invalid_argument);
  const FeasibilityReport report = check_feasibility(instance, bad);
  EXPECT_FALSE(report.feasible);
  EXPECT_FALSE(report.relays_informed);
  EXPECT_EQ(report.reason, "relay node id out of range");
}

TEST(TmedbInstance, Validation) {
  const Tveg tveg = line_tveg();
  TmedbInstance good{&tveg, 0, 50.0};
  EXPECT_NO_THROW(good.validate());
  EXPECT_DOUBLE_EQ(good.effective_epsilon(), 0.01);

  TmedbInstance custom_eps{&tveg, 0, 50.0, 0.2};
  EXPECT_DOUBLE_EQ(custom_eps.effective_epsilon(), 0.2);

  TmedbInstance bad_source{&tveg, 9, 50.0};
  EXPECT_THROW(bad_source.validate(), std::invalid_argument);
  TmedbInstance bad_deadline{&tveg, 0, 500.0};
  EXPECT_THROW(bad_deadline.validate(), std::invalid_argument);
  TmedbInstance no_tveg{nullptr, 0, 50.0};
  EXPECT_THROW(no_tveg.validate(), std::invalid_argument);
}

TEST(Cascade, StepChainInformsInTimeOrder) {
  const Tveg tveg = line_tveg();
  const TmedbInstance inst{&tveg, 0, 100.0};
  const Cost w = tveg.edge_weight(0, 1, 0.0);

  Schedule s;
  s.add(0, 10.0, w);
  s.add(1, 20.0, w);

  auto p5 = uninformed_probabilities(inst, s, 5.0);
  EXPECT_DOUBLE_EQ(p5[1], 1.0);
  auto p15 = uninformed_probabilities(inst, s, 15.0);
  EXPECT_DOUBLE_EQ(p15[1], 0.0);
  EXPECT_DOUBLE_EQ(p15[2], 1.0);
  auto p25 = uninformed_probabilities(inst, s, 25.0);
  EXPECT_DOUBLE_EQ(p25[2], 0.0);
  EXPECT_DOUBLE_EQ(p25[0], 0.0);  // source always informed
}

TEST(Cascade, SameTimeNonStopJourneyIsApplied) {
  const Tveg tveg = line_tveg();  // τ = 0
  const TmedbInstance inst{&tveg, 0, 100.0};
  const Cost w = tveg.edge_weight(0, 1, 0.0);
  Schedule s;
  s.add(0, 10.0, w);
  s.add(1, 10.0, w);  // relays the packet the instant it receives it
  const CascadeResult r = run_cascade(inst, s, 100.0);
  EXPECT_TRUE(r.all_applied);
  EXPECT_DOUBLE_EQ(r.p[2], 0.0);
}

TEST(Cascade, UninformedRelayIsNotApplied) {
  const Tveg tveg = line_tveg();
  const TmedbInstance inst{&tveg, 0, 100.0};
  const Cost w = tveg.edge_weight(0, 1, 0.0);
  Schedule s;
  s.add(1, 10.0, w);  // relay 1 never received the packet
  const CascadeResult r = run_cascade(inst, s, 100.0);
  EXPECT_FALSE(r.all_applied);
  EXPECT_DOUBLE_EQ(r.p[2], 1.0);
}

TEST(Cascade, LatencyDelaysEligibility) {
  const Tveg tveg = line_tveg(channel::ChannelModel::kStep, 5.0);
  const TmedbInstance inst{&tveg, 0, 100.0};
  const Cost w = tveg.edge_weight(0, 1, 0.0);
  Schedule s;
  s.add(0, 10.0, w);   // 1 informed at 15
  s.add(1, 12.0, w);   // too early: 1 does not yet hold the packet
  const CascadeResult r = run_cascade(inst, s, 100.0);
  EXPECT_FALSE(r.all_applied);

  Schedule ok;
  ok.add(0, 10.0, w);
  ok.add(1, 15.0, w);  // exactly at arrival
  const CascadeResult r2 = run_cascade(inst, ok, 100.0);
  EXPECT_TRUE(r2.all_applied);
  EXPECT_DOUBLE_EQ(r2.p[2], 0.0);
}

TEST(Cascade, RayleighProbabilitiesMultiply) {
  const Tveg tveg = line_tveg(channel::ChannelModel::kRayleigh);
  const TmedbInstance inst{&tveg, 0, 100.0, 0.25};
  const double beta = tveg.radio().rayleigh_beta(1.0);
  const Cost w = beta;  // φ = 1 - e^{-1} ≈ 0.632 per shot
  Schedule s;
  s.add(0, 10.0, w);
  s.add(0, 20.0, w);
  const auto p = uninformed_probabilities(inst, s, 50.0);
  const double phi = 1.0 - std::exp(-1.0);
  EXPECT_NEAR(p[1], phi * phi, 1e-12);
}

TEST(CheckFeasibility, AcceptsValidStepSchedule) {
  const Tveg tveg = line_tveg();
  const TmedbInstance inst{&tveg, 0, 50.0};
  const Cost w = tveg.edge_weight(0, 1, 0.0);
  Schedule s;
  s.add(0, 10.0, w);
  s.add(1, 20.0, w);
  const auto report = check_feasibility(inst, s);
  EXPECT_TRUE(report.feasible) << report.reason;
  EXPECT_TRUE(report.relays_informed);
  EXPECT_TRUE(report.all_informed);
  EXPECT_TRUE(report.within_deadline);
  EXPECT_LE(report.max_uninformed_probability, 0.01);
}

TEST(CheckFeasibility, RejectsCircularSameTimeInforming) {
  // 1 and 2 transmit at the same instant, each the other's only source —
  // causally impossible even though a naive Eq. 6 product accepts it.
  trace::ContactTrace t(3, 100.0);
  t.add({1, 2, 0.0, 100.0, 1.0});
  t.add({0, 1, 50.0, 100.0, 1.0});  // source reaches 1 only later
  const Tveg tveg(t, test_radio(), {.model = channel::ChannelModel::kStep});
  const TmedbInstance inst{&tveg, 0, 100.0};
  const Cost w = tveg.edge_weight(1, 2, 10.0);
  Schedule s;
  s.add(1, 10.0, w);
  s.add(2, 10.0, w);
  const auto report = check_feasibility(inst, s);
  EXPECT_FALSE(report.feasible);
  EXPECT_FALSE(report.relays_informed);
}

TEST(CheckFeasibility, RejectsLateTransmission) {
  const Tveg tveg = line_tveg();
  const TmedbInstance inst{&tveg, 0, 30.0};
  Schedule s;
  s.add(0, 40.0, 1.0);
  const auto report = check_feasibility(inst, s);
  EXPECT_FALSE(report.within_deadline);
  EXPECT_FALSE(report.feasible);
}

TEST(CheckFeasibility, RejectsOverBudget) {
  const Tveg tveg = line_tveg();
  const Cost w = tveg.edge_weight(0, 1, 0.0);
  TmedbInstance inst{&tveg, 0, 50.0};
  inst.budget = w / 2;
  Schedule s;
  s.add(0, 10.0, w);
  s.add(1, 20.0, w);
  const auto report = check_feasibility(inst, s);
  EXPECT_FALSE(report.within_budget);
  EXPECT_FALSE(report.feasible);
}

TEST(CheckFeasibility, RejectsUncoveredNode) {
  const Tveg tveg = line_tveg();
  const TmedbInstance inst{&tveg, 0, 50.0};
  const Cost w = tveg.edge_weight(0, 1, 0.0);
  Schedule s;
  s.add(0, 10.0, w);  // node 2 never reached
  const auto report = check_feasibility(inst, s);
  EXPECT_FALSE(report.all_informed);
  EXPECT_FALSE(report.feasible);
  EXPECT_GT(report.max_uninformed_probability, 0.5);
}

TEST(CheckFeasibility, RejectsCostOutsideRange) {
  trace::ContactTrace t(2, 10.0);
  t.add({0, 1, 0.0, 10.0, 1.0});
  auto radio = test_radio();
  radio.w_max = 1e-20;
  const Tveg tveg(t, radio, {.model = channel::ChannelModel::kStep});
  const TmedbInstance inst{&tveg, 0, 10.0};
  Schedule s;
  s.add(0, 1.0, 1.0);  // way above w_max
  const auto report = check_feasibility(inst, s);
  EXPECT_FALSE(report.costs_in_range);
  EXPECT_FALSE(report.feasible);
}

TEST(NormalizedEnergy, DividesByThresholdEnergy) {
  const Tveg tveg = line_tveg();
  const TmedbInstance inst{&tveg, 0, 50.0};
  Schedule s;
  const Cost w = tveg.radio().noise_density * tveg.radio().gamma_linear();
  s.add(0, 1.0, w);
  EXPECT_NEAR(normalized_energy(inst, s), 1.0, 1e-12);
}

}  // namespace
}  // namespace tveg::core
