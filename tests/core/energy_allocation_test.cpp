#include "core/energy_allocation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/eedcb.hpp"
#include "core/fr.hpp"
#include "support/math.hpp"
#include "trace/generators.hpp"

namespace tveg::core {
namespace {

channel::RadioParams test_radio() {
  channel::RadioParams r;
  r.epsilon = 0.01;
  r.w_max = support::kInf;
  return r;
}

Tveg line_rayleigh() {
  trace::ContactTrace t(3, 100.0);
  t.add({0, 1, 0.0, 100.0, 1.0});
  t.add({1, 2, 0.0, 100.0, 1.0});
  return Tveg(t, test_radio(), {.model = channel::ChannelModel::kRayleigh});
}

TEST(AllocateEnergy, SingleHopChainMatchesEpsilonCosts) {
  const Tveg tveg = line_rayleigh();
  const TmedbInstance inst{&tveg, 0, 100.0};
  Schedule backbone;
  backbone.add(0, 10.0, 1.0);
  backbone.add(1, 20.0, 1.0);
  const AllocationOutcome out = allocate_energy(inst, backbone);
  ASSERT_TRUE(out.feasible);
  // Each receiver covered exactly once → each w equals the ε-cost.
  const double expected = tveg.radio().rayleigh_beta(1.0) / std::log(1 / 0.99);
  ASSERT_EQ(out.schedule.size(), 2u);
  for (const auto& tx : out.schedule.transmissions())
    EXPECT_NEAR(tx.cost, expected, expected * 1e-6);
  EXPECT_TRUE(check_feasibility(inst, out.schedule).feasible);
}

TEST(AllocateEnergy, OverlappingCoverageIsCheaperThanIndependent) {
  // Both 1 and 2 hear the source AND each other: the solver can split the
  // failure budget.
  trace::ContactTrace t(3, 100.0);
  t.add({0, 1, 0.0, 100.0, 1.0});
  t.add({0, 2, 0.0, 100.0, 1.0});
  t.add({1, 2, 0.0, 100.0, 1.0});
  const Tveg tveg(t, test_radio(),
                  {.model = channel::ChannelModel::kRayleigh});
  const TmedbInstance inst{&tveg, 0, 100.0};
  Schedule backbone;
  backbone.add(0, 10.0, 1.0);
  backbone.add(1, 20.0, 1.0);
  backbone.add(2, 30.0, 1.0);
  const AllocationOutcome out = allocate_energy(inst, backbone);
  ASSERT_TRUE(out.feasible);
  EXPECT_TRUE(check_feasibility(inst, out.schedule).feasible);
  // Strictly cheaper than serving each node independently at ε.
  const double eps_cost =
      tveg.radio().rayleigh_beta(1.0) / std::log(1 / 0.99);
  EXPECT_LT(out.schedule.total_cost(), 3 * eps_cost);
}

TEST(AllocateEnergy, RejectsBackboneWithUnreachableNode) {
  const Tveg tveg = line_rayleigh();
  const TmedbInstance inst{&tveg, 0, 100.0};
  Schedule backbone;
  backbone.add(0, 10.0, 1.0);  // node 2 is never reached
  const AllocationOutcome out = allocate_energy(inst, backbone);
  EXPECT_FALSE(out.feasible);
}

TEST(AllocateEnergy, RejectsCircularSameTimeBackbone) {
  trace::ContactTrace t(3, 100.0);
  t.add({1, 2, 0.0, 100.0, 1.0});
  t.add({0, 1, 50.0, 100.0, 1.0});
  const Tveg tveg(t, test_radio(),
                  {.model = channel::ChannelModel::kRayleigh});
  const TmedbInstance inst{&tveg, 0, 100.0};
  Schedule backbone;
  backbone.add(1, 10.0, 1.0);  // 1 uninformed: only 2 could inform it, at
  backbone.add(2, 10.0, 1.0);  // the same instant, and vice versa
  const AllocationOutcome out = allocate_energy(inst, backbone);
  EXPECT_FALSE(out.feasible);
}

TEST(AllocateEnergy, AcceptsSameTimeCascadeInCausalOrder) {
  const Tveg tveg = line_rayleigh();
  const TmedbInstance inst{&tveg, 0, 100.0};
  Schedule backbone;
  backbone.add(0, 10.0, 1.0);
  backbone.add(1, 10.0, 1.0);  // legal non-stop journey at τ = 0
  const AllocationOutcome out = allocate_energy(inst, backbone);
  ASSERT_TRUE(out.feasible);
  EXPECT_TRUE(check_feasibility(inst, out.schedule).feasible);
}

TEST(AllocateEnergy, EmptyBackboneOnlyFeasibleForSingleton) {
  const Tveg tveg = line_rayleigh();
  const TmedbInstance inst{&tveg, 0, 100.0};
  const AllocationOutcome out = allocate_energy(inst, Schedule{});
  EXPECT_FALSE(out.feasible);
}

TEST(AllocateEnergy, AugmentedLagrangianSolverAlsoFeasible) {
  const Tveg tveg = line_rayleigh();
  const TmedbInstance inst{&tveg, 0, 100.0};
  Schedule backbone;
  backbone.add(0, 10.0, 1.0);
  backbone.add(1, 20.0, 1.0);
  const AllocationOutcome cd = allocate_energy(
      inst, backbone, {.solver = AllocationSolver::kCoordinateDescent});
  const AllocationOutcome al = allocate_energy(
      inst, backbone, {.solver = AllocationSolver::kAugmentedLagrangian});
  ASSERT_TRUE(cd.feasible);
  ASSERT_TRUE(al.feasible);
  EXPECT_TRUE(check_feasibility(inst, al.schedule).feasible);
  // Within 10% of each other on this simple chain.
  EXPECT_NEAR(al.schedule.total_cost(), cd.schedule.total_cost(),
              0.1 * cd.schedule.total_cost());
}

TEST(FrEedcb, EndToEndFeasibleUnderFading) {
  trace::HaggleLikeConfig cfg;
  cfg.nodes = 10;
  cfg.horizon = 6000;
  cfg.activation_ramp_end = 1000;
  cfg.pair_probability = 0.5;
  cfg.seed = 6;
  const Tveg tveg(trace::generate_haggle_like(cfg), test_radio(),
                  {.model = channel::ChannelModel::kRayleigh});
  const TmedbInstance inst{&tveg, 0, 5000.0};
  const FrResult r = run_fr_eedcb(inst);
  ASSERT_TRUE(r.feasible());
  const auto report = check_feasibility(inst, r.schedule());
  EXPECT_TRUE(report.feasible) << report.reason;
  EXPECT_GT(r.allocation.constraint_count, 0u);
}

TEST(FrBaseline, EndToEndFeasibleUnderFading) {
  trace::HaggleLikeConfig cfg;
  cfg.nodes = 10;
  cfg.horizon = 6000;
  cfg.activation_ramp_end = 1000;
  cfg.pair_probability = 0.5;
  cfg.seed = 6;
  const Tveg tveg(trace::generate_haggle_like(cfg), test_radio(),
                  {.model = channel::ChannelModel::kRayleigh});
  const TmedbInstance inst{&tveg, 0, 5000.0};
  const FrResult greedy =
      run_fr_baseline(inst, {.rule = BaselineRule::kGreedy});
  ASSERT_TRUE(greedy.feasible());
  EXPECT_TRUE(check_feasibility(inst, greedy.schedule()).feasible);

  const FrResult rnd =
      run_fr_baseline(inst, {.rule = BaselineRule::kRandom, .seed = 2});
  ASSERT_TRUE(rnd.feasible());
  EXPECT_TRUE(check_feasibility(inst, rnd.schedule()).feasible);
}

}  // namespace
}  // namespace tveg::core
