#include "core/tradeoff.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/math.hpp"
#include "trace/generators.hpp"

namespace tveg::core {
namespace {

channel::RadioParams unit_radio() {
  channel::RadioParams r;
  r.noise_density = 1.0;
  r.decoding_threshold_db = 0.0;
  r.path_loss_exponent = 2.0;
  r.epsilon = 0.01;
  r.w_max = support::kInf;
  return r;
}

/// Chain 0-1-2 with staggered contacts: completion impossible before 60.
Tveg chain() {
  trace::ContactTrace t(3, 100.0);
  t.add({0, 1, 10.0, 30.0, 1.0});
  t.add({1, 2, 60.0, 90.0, 1.0});
  return Tveg(t, unit_radio(), {.model = channel::ChannelModel::kStep});
}

TEST(EarliestCompletion, FollowsForemostJourneys) {
  const Tveg tveg = chain();
  const TmedbInstance inst{&tveg, 0, 100.0};
  // Foremost: 1 informed at 10 (τ=0), 2 informed at 60.
  EXPECT_DOUBLE_EQ(earliest_completion(inst), 60.0);
}

TEST(EarliestCompletion, InfiniteWhenUnreachable) {
  trace::ContactTrace t(3, 100.0);
  t.add({0, 1, 0.0, 100.0, 1.0});
  const Tveg tveg(t, unit_radio(), {.model = channel::ChannelModel::kStep});
  const TmedbInstance inst{&tveg, 0, 100.0};
  EXPECT_TRUE(std::isinf(earliest_completion(inst)));
}

TEST(EarliestCompletion, RespectsMulticastTargets) {
  const Tveg tveg = chain();
  TmedbInstance inst{&tveg, 0, 100.0};
  inst.targets = {1};
  EXPECT_DOUBLE_EQ(earliest_completion(inst), 10.0);
}

TEST(Tradeoff, InfeasibleBelowEarliestCompletion) {
  const Tveg tveg = chain();
  const TmedbInstance inst{&tveg, 0, 100.0};
  const TradeoffCurve curve = delay_energy_tradeoff(inst, 20, 100, 20);
  ASSERT_EQ(curve.points.size(), 5u);
  EXPECT_DOUBLE_EQ(curve.earliest_completion, 60.0);
  EXPECT_FALSE(curve.points[0].feasible);  // T = 20
  EXPECT_FALSE(curve.points[1].feasible);  // T = 40
  EXPECT_TRUE(curve.points[2].feasible);   // T = 60
  EXPECT_TRUE(curve.points[4].feasible);   // T = 100
}

TEST(Tradeoff, EnergyNonIncreasingOnHaggleTrace) {
  trace::HaggleLikeConfig cfg;
  cfg.nodes = 10;
  cfg.horizon = 8000;
  cfg.activation_ramp_end = 500;
  cfg.pair_probability = 0.6;
  cfg.seed = 5;
  const Tveg tveg(trace::generate_haggle_like(cfg), unit_radio(),
                  {.model = channel::ChannelModel::kStep});
  const TmedbInstance inst{&tveg, 0, 7000.0};
  const TradeoffCurve curve = delay_energy_tradeoff(inst, 2000, 7000, 1000);
  double prev = support::kInf;
  for (const TradeoffPoint& p : curve.points) {
    if (!p.feasible) continue;
    // The heuristic is not strictly monotone; allow small wobble.
    EXPECT_LE(p.normalized_energy, prev * 1.25) << "T=" << p.deadline;
    prev = std::min(prev, p.normalized_energy);
  }
}

TEST(Tradeoff, ValidatesSweepRange) {
  const Tveg tveg = chain();
  const TmedbInstance inst{&tveg, 0, 100.0};
  EXPECT_THROW(delay_energy_tradeoff(inst, 0, 10, 5), std::invalid_argument);
  EXPECT_THROW(delay_energy_tradeoff(inst, 50, 10, 5), std::invalid_argument);
  EXPECT_THROW(delay_energy_tradeoff(inst, 10, 50, 0), std::invalid_argument);
}

}  // namespace
}  // namespace tveg::core
