#include "core/schedule_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace tveg::core {
namespace {

TEST(ScheduleIo, RoundTripPreservesEverything) {
  Schedule s;
  s.add(3, 1413.8317, 9.30357e-17);
  s.add(0, 0.0, 1.0);
  s.add(7, 1413.8317, 4.21312e-17);

  std::stringstream ss;
  write_schedule(ss, s);
  const Schedule back = read_schedule(ss);
  EXPECT_EQ(back.transmissions(), s.transmissions());
}

TEST(ScheduleIo, EmptyScheduleRoundTrips) {
  std::stringstream ss;
  write_schedule(ss, Schedule{});
  EXPECT_TRUE(read_schedule(ss).empty());
}

TEST(ScheduleIo, SkipsCommentsAndBlankLines) {
  std::stringstream ss("# header\n\n2 10.5 0.25\n# trailing\n");
  const Schedule s = read_schedule(ss);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.transmissions()[0].relay, 2);
  EXPECT_DOUBLE_EQ(s.transmissions()[0].cost, 0.25);
}

TEST(ScheduleIo, MalformedLineThrows) {
  std::stringstream ss("1 two 3.0\n");
  EXPECT_THROW(read_schedule(ss), std::invalid_argument);
}

// Fuzz-surfaced hardening (tests/fuzz/corpus pins the file-level
// reproducers): a fourth field used to be silently dropped.
TEST(ScheduleIo, TrailingGarbageThrows) {
  std::stringstream ss("0 1 5 junk\n");
  EXPECT_THROW(read_schedule(ss), std::invalid_argument);
}

// Negative relay ids used to parse fine and blow up later in the cascade.
TEST(ScheduleIo, NegativeRelayThrows) {
  std::stringstream ss("-7 1 5\n");
  EXPECT_THROW(read_schedule(ss), std::invalid_argument);
}

TEST(ScheduleIo, NonFiniteFieldsThrow) {
  for (const char* line : {"0 nan 5\n", "0 1 inf\n", "0 1 1e999\n"}) {
    std::stringstream ss(line);
    EXPECT_THROW(read_schedule(ss), std::invalid_argument) << line;
  }
}

TEST(ScheduleIo, MissingFileThrows) {
  EXPECT_THROW(read_schedule_file("/nonexistent/schedule.txt"),
               std::invalid_argument);
}

TEST(ScheduleIo, FileRoundTrip) {
  Schedule s;
  s.add(1, 5.0, 2.5);
  const std::string path = ::testing::TempDir() + "/tveg_schedule_test.txt";
  write_schedule_file(path, s);
  EXPECT_EQ(read_schedule_file(path).transmissions(), s.transmissions());
}

}  // namespace
}  // namespace tveg::core
