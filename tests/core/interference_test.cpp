#include "core/interference.hpp"

#include <gtest/gtest.h>

#include "sim/monte_carlo.hpp"
#include "support/math.hpp"

namespace tveg::core {
namespace {

channel::RadioParams unit_radio() {
  channel::RadioParams r;
  r.noise_density = 1.0;
  r.decoding_threshold_db = 0.0;
  r.path_loss_exponent = 2.0;
  r.epsilon = 0.01;
  r.w_max = support::kInf;
  return r;
}

/// 0 informs 1 early over a private link; later both can reach receiver 2.
Tveg collision_fixture() {
  trace::ContactTrace t(3, 100.0);
  t.add({0, 1, 0.0, 8.0, 1.0});
  t.add({0, 2, 9.0, 100.0, 1.0});
  t.add({1, 2, 9.0, 100.0, 1.0});
  return Tveg(t, unit_radio(), {.model = channel::ChannelModel::kStep});
}

Schedule colliding_schedule(const Tveg& tveg) {
  Schedule s;
  s.add(0, 5.0, tveg.edge_weight(0, 1, 0.0));
  s.add(0, 10.0, tveg.edge_weight(0, 2, 10.0));
  s.add(1, 10.0, tveg.edge_weight(1, 2, 10.0));
  return s;
}

TEST(CollisionCount, DetectsConcurrentOverlap) {
  const Tveg tveg = collision_fixture();
  const Schedule s = colliding_schedule(tveg);
  EXPECT_EQ(count_collision_events(tveg, s), 1u);  // receiver 2 at t = 10
}

TEST(CollisionCount, ZeroForStaggeredSchedule) {
  const Tveg tveg = collision_fixture();
  Schedule s;
  s.add(0, 5.0, tveg.edge_weight(0, 1, 0.0));
  s.add(0, 10.0, tveg.edge_weight(0, 2, 10.0));
  s.add(1, 20.0, tveg.edge_weight(1, 2, 20.0));
  EXPECT_EQ(count_collision_events(tveg, s), 0u);
}

TEST(Stagger, ResolvesCollisionAndStaysFeasible) {
  const Tveg tveg = collision_fixture();
  const TmedbInstance inst{&tveg, 0, 100.0};
  const Schedule s = colliding_schedule(tveg);
  ASSERT_TRUE(check_feasibility(inst, s).feasible);
  const auto dts = tveg.build_dts();
  const StaggerResult r = stagger_schedule(inst, dts, s);
  EXPECT_EQ(r.collisions_before, 1u);
  EXPECT_EQ(r.collisions_after, 0u);
  EXPECT_GE(r.moves, 1u);
  EXPECT_TRUE(check_feasibility(inst, r.schedule).feasible);
  EXPECT_DOUBLE_EQ(r.schedule.total_cost(), s.total_cost());
}

TEST(Stagger, ImprovesInterferenceDelivery) {
  const Tveg tveg = collision_fixture();
  const TmedbInstance inst{&tveg, 0, 100.0};
  const Schedule s = colliding_schedule(tveg);
  const auto dts = tveg.build_dts();
  const StaggerResult r = stagger_schedule(inst, dts, s);

  sim::McOptions mc{.trials = 200, .seed = 1};
  mc.model_interference = true;
  const auto before = sim::simulate_delivery(tveg, 0, s, mc);
  const auto after = sim::simulate_delivery(tveg, 0, r.schedule, mc);
  EXPECT_NEAR(before.mean_delivery_ratio, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(after.mean_delivery_ratio, 1.0);
}

TEST(Stagger, NoopOnCollisionFreeSchedule) {
  const Tveg tveg = collision_fixture();
  const TmedbInstance inst{&tveg, 0, 100.0};
  Schedule s;
  s.add(0, 5.0, tveg.edge_weight(0, 1, 0.0));
  s.add(0, 10.0, tveg.edge_weight(0, 2, 10.0));
  s.add(1, 20.0, tveg.edge_weight(1, 2, 20.0));
  const auto dts = tveg.build_dts();
  const StaggerResult r = stagger_schedule(inst, dts, s);
  EXPECT_EQ(r.moves, 0u);
  EXPECT_EQ(r.schedule.transmissions(), s.transmissions());
}

TEST(Stagger, KeepsCollisionWhenNoFeasibleMoveExists) {
  // The colliding pair's contacts end right after t = 10: no later DTS
  // point can host the transmission, so the collision must remain.
  trace::ContactTrace t(3, 100.0);
  t.add({0, 1, 0.0, 8.0, 1.0});
  t.add({0, 2, 9.0, 11.0, 1.0});
  t.add({1, 2, 9.0, 11.0, 1.0});
  const Tveg tveg(t, unit_radio(), {.model = channel::ChannelModel::kStep});
  const TmedbInstance inst{&tveg, 0, 100.0};
  Schedule s;
  s.add(0, 5.0, tveg.edge_weight(0, 1, 0.0));
  s.add(0, 9.0, tveg.edge_weight(0, 2, 9.0));
  s.add(1, 9.0, tveg.edge_weight(1, 2, 9.0));
  const auto dts = tveg.build_dts();
  const StaggerResult r = stagger_schedule(inst, dts, s);
  // Either a move inside [9, 11) resolved it, or it stays — never worse.
  EXPECT_LE(r.collisions_after, r.collisions_before);
  EXPECT_TRUE(check_feasibility(inst, r.schedule).feasible);
}

}  // namespace
}  // namespace tveg::core
