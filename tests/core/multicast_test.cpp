// Multicast generalization: TmedbInstance::targets restricts condition (ii)
// to a terminal subset. The MEMT problem the paper reduces to is natively
// multicast, so the whole EEDCB/FR-EEDCB pipeline supports it.
#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "core/brute_force.hpp"
#include "core/eedcb.hpp"
#include "core/fr.hpp"
#include "support/math.hpp"
#include "trace/generators.hpp"

namespace tveg::core {
namespace {

channel::RadioParams unit_radio() {
  channel::RadioParams r;
  r.noise_density = 1.0;
  r.decoding_threshold_db = 0.0;
  r.path_loss_exponent = 2.0;
  r.epsilon = 0.01;
  r.w_max = support::kInf;
  return r;
}

/// Star: source 0; node 1 near (d=1), node 2 far (d=3).
Tveg star() {
  trace::ContactTrace t(3, 10.0);
  t.add({0, 1, 0.0, 10.0, 1.0});
  t.add({0, 2, 0.0, 10.0, 3.0});
  return Tveg(t, unit_radio(), {.model = channel::ChannelModel::kStep});
}

TEST(Multicast, SubsetIsCheaperThanBroadcast) {
  const Tveg tveg = star();
  TmedbInstance multicast{&tveg, 0, 10.0};
  multicast.targets = {1};  // only the near node matters
  const auto r = run_eedcb(multicast);
  ASSERT_TRUE(r.covered_all);
  EXPECT_DOUBLE_EQ(r.schedule.total_cost(), 1.0);  // not 9

  TmedbInstance broadcast{&tveg, 0, 10.0};
  const auto rb = run_eedcb(broadcast);
  ASSERT_TRUE(rb.covered_all);
  EXPECT_DOUBLE_EQ(rb.schedule.total_cost(), 9.0);
}

TEST(Multicast, FeasibilityIgnoresNonTargets) {
  const Tveg tveg = star();
  TmedbInstance inst{&tveg, 0, 10.0};
  inst.targets = {1};
  Schedule s;
  s.add(0, 1.0, 1.0);  // reaches 1 only
  const auto report = check_feasibility(inst, s);
  EXPECT_TRUE(report.feasible) << report.reason;
  // The same schedule fails the broadcast version.
  TmedbInstance broadcast{&tveg, 0, 10.0};
  EXPECT_FALSE(check_feasibility(broadcast, s).feasible);
}

TEST(Multicast, NonTargetServesAsRelay) {
  // Source 0 reaches target 2 only through non-target 1.
  trace::ContactTrace t(3, 20.0);
  t.add({0, 1, 0.0, 10.0, 1.0});
  t.add({1, 2, 10.0, 20.0, 1.0});
  const Tveg tveg(t, unit_radio(), {.model = channel::ChannelModel::kStep});
  TmedbInstance inst{&tveg, 0, 20.0};
  inst.targets = {2};
  const auto r = run_eedcb(inst);
  ASSERT_TRUE(r.covered_all);
  ASSERT_EQ(r.schedule.size(), 2u);
  EXPECT_EQ(r.schedule.transmissions()[0].relay, 0);
  EXPECT_EQ(r.schedule.transmissions()[1].relay, 1);
  EXPECT_TRUE(check_feasibility(inst, r.schedule).feasible);
}

TEST(Multicast, BruteForceAgreesOnSubsetGoal) {
  const Tveg tveg = star();
  TmedbInstance inst{&tveg, 0, 10.0};
  inst.targets = {1};
  const auto r = brute_force_optimal(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.cost, 1.0);
}

TEST(Multicast, FrPipelineAllocatesForTargetsOnly) {
  trace::ContactTrace t(3, 10.0);
  t.add({0, 1, 0.0, 10.0, 1.0});
  t.add({0, 2, 0.0, 10.0, 3.0});
  const Tveg tveg(t, unit_radio(),
                  {.model = channel::ChannelModel::kRayleigh});
  TmedbInstance inst{&tveg, 0, 10.0};
  inst.targets = {1};
  const auto r = run_fr_eedcb(inst);
  ASSERT_TRUE(r.feasible());
  EXPECT_TRUE(check_feasibility(inst, r.schedule()).feasible);
  // Serving only the near node is far cheaper than ε-covering the far one.
  const double near_eps_cost =
      tveg.radio().rayleigh_beta(1.0) / std::log(1 / 0.99);
  EXPECT_LE(r.schedule().total_cost(), near_eps_cost * 1.01);
}

TEST(Multicast, BaselinesRejectTargetSubsets) {
  const Tveg tveg = star();
  TmedbInstance inst{&tveg, 0, 10.0};
  inst.targets = {1};
  EXPECT_THROW(run_baseline(inst, {.rule = BaselineRule::kGreedy}),
               std::invalid_argument);
}

TEST(Multicast, TargetValidation) {
  const Tveg tveg = star();
  TmedbInstance inst{&tveg, 0, 10.0};
  inst.targets = {7};
  EXPECT_THROW(inst.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace tveg::core
