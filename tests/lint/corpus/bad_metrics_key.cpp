// tveg-lint fixture: exactly one metrics-key finding (line 8). Never
// compiled — only scanned by the lint tests and corpus ctests.
#include "obs/metrics.hpp"

namespace tveg::fixture {

void bump() {
  obs::MetricsRegistry::global().counter("fixture.bad.key").add(1);
}

}  // namespace tveg::fixture
