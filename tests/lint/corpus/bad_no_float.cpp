// tveg-lint fixture: exactly one no-float finding (line 8). Never
// compiled — only scanned by the lint tests and corpus ctests.
#include <cstddef>

namespace tveg::fixture {

double energy_sum(const double* costs, std::size_t n) {
  float acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc += costs[i];
  return acc;
}

}  // namespace tveg::fixture
