// tveg-lint fixture: exactly one unchecked-result finding (line 8). Never
// compiled — only scanned by the lint tests and corpus ctests.
#include "support/result.hpp"

namespace tveg::fixture {

double take_blindly(const support::Result<double>& parsed) {
  return parsed.value();
}

}  // namespace tveg::fixture
