// tveg-lint fixture: the filename contains "span", so the wall-clock read
// below fires BOTH the base no-wall-clock rule and the scoped
// no-wall-clock-in-spans variant (two findings, same line). Never compiled —
// only scanned by the lint tests and corpus ctests.
#include <chrono>

namespace tveg::fixture {

long long span_begin_wall_ns() {
  const auto t = std::chrono::system_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             t.time_since_epoch())
      .count();
}

}  // namespace tveg::fixture
