// tveg-lint fixture: zero findings — the approved idioms for everything the
// other fixtures do wrong. Never compiled, only scanned.
#include "obs/metrics.hpp"
#include "support/result.hpp"
#include "support/rng.hpp"

namespace tveg::fixture {

// Randomness through the seeded, splittable support::Rng.
double sample(support::Rng& rng) { return rng.uniform(); }

// Metric keys follow tveg.<subsystem>.<name>.
void record_run() {
  obs::MetricsRegistry::global().counter("tveg.sim.fixture_runs").add(1);
}

// Result access behind an ok() branch; accumulation in double.
double checked_take(const support::Result<double>& parsed) {
  if (!parsed.ok()) return 0.0;
  return parsed.value();
}

}  // namespace tveg::fixture
