// --audit-suppressions fixture: two stale pragmas. Line 8 suppresses a
// rule that does not fire there (nothing wall-clock on the line), line 9
// names a rule that does not exist. The live suppression on line 12 is
// load-bearing (rand() really does fire no-unseeded-rng) and must NOT be
// reported.
#include <cstdlib>

int stale() { return 1; }  // tveg-lint: allow(no-wall-clock)
int bogus() { return 2; }  // tveg-lint: allow(no-such-rule)

int live() {
  return std::rand();  // tveg-lint: allow(no-unseeded-rng)
}
