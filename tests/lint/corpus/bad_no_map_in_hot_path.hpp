// tveg-lint fixture: exactly one no-map-in-hot-path finding (line 8).
// The "map_in_hot_path" in the file name opts it into the hot-path scope.
// Never compiled — only scanned by the lint tests and corpus ctests.
#include <unordered_map>

namespace tveg::fixture {

struct HotState { std::unordered_map<int, double> forward_cache; };

}  // namespace tveg::fixture
