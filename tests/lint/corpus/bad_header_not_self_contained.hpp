// tveg-lint fixture: passes every text rule but fails the isolated-compile
// check — std::string is used without including <string>.
#pragma once

namespace tveg::fixture {

inline std::string greeting() { return "hello"; }

}  // namespace tveg::fixture
