// tveg-lint fixture: exactly one no-unseeded-rng finding (line 8). Never
// compiled — only scanned by the lint tests and corpus ctests.
#include <cstdlib>

namespace tveg::fixture {

int draw_unseeded() {
  return std::rand();
}

}  // namespace tveg::fixture
