// tveg-lint fixture: exactly one no-core-include-in-certify finding
// (line 8). The "certify" in the file name opts it into the certifier
// scope; the allowed includes below must NOT fire.
// Never compiled — only scanned by the lint tests and corpus ctests.
#include "channel/radio.hpp"
#include "support/math.hpp"
#include "trace/contact_trace.hpp"
#include "core/eedcb.hpp"

namespace tveg::fixture {

// A certifier that asks the solver what "feasible" means has no authority:
// the independence argument needs two implementations that can disagree.
inline int certify_by_asking_the_solver() { return 0; }

}  // namespace tveg::fixture
