// tveg-lint fixture: exactly one no-wall-clock finding (line 8). Never
// compiled — only scanned by the lint tests and corpus ctests.
#include <chrono>

namespace tveg::fixture {

double now_wall_seconds() {
  const auto t = std::chrono::system_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

}  // namespace tveg::fixture
