// tveg-lint fixture: exactly one no-unbudgeted-pool-loop finding (line 10).
// The "pool_loop" in the file name opts it into the solver-layer scope.
// Never compiled — only scanned by the lint tests and corpus ctests.
#include "support/thread_pool.hpp"

namespace tveg::fixture {

void grind(support::ThreadPool& pool, double* out, std::size_t n) {
  // No token, no heartbeat: a governed solve could never drain this loop.
  pool.parallel_for(0, n, [&](std::size_t i) { out[i] = double(i) * 2.0; });
}

}  // namespace tveg::fixture
