// tveg-lint rule tests: each corpus fixture is pinned to its exact rule-id
// finding (file + line), inline snippets cover the scoping/suppression
// corners, and the clean fixture + the lint.clean_tree ctest keep the real
// tree honest.
#include "tools/lint/rules.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace tveg::lint {
namespace {

std::string corpus_path(const std::string& name) {
  return std::string(TVEG_LINT_CORPUS_DIR) + "/" + name;
}

std::string read_corpus(const std::string& name) {
  std::ifstream in(corpus_path(name), std::ios::binary);
  EXPECT_TRUE(in) << "missing corpus fixture " << name;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

struct PinnedFixture {
  const char* file;
  const char* rule;
  long line;
};

TEST(TvegLint, CorpusFixturesPinExactFindings) {
  const std::vector<PinnedFixture> fixtures = {
      {"bad_no_unseeded_rng.cpp", "no-unseeded-rng", 8},
      {"bad_no_wall_clock.cpp", "no-wall-clock", 8},
      {"bad_unchecked_result.cpp", "unchecked-result", 8},
      {"bad_metrics_key.cpp", "metrics-key", 8},
      {"bad_no_float.cpp", "no-float", 8},
      {"bad_no_core_include_in_certify.cpp", "no-core-include-in-certify",
       8},
      {"bad_no_map_in_hot_path.hpp", "no-map-in-hot-path", 8},
  };
  for (const auto& fixture : fixtures) {
    const auto findings =
        lint_source(fixture.file, read_corpus(fixture.file));
    ASSERT_EQ(findings.size(), 1u)
        << fixture.file << ": expected exactly one finding, got "
        << findings.size();
    EXPECT_EQ(findings[0].rule, fixture.rule) << fixture.file;
    EXPECT_EQ(findings[0].line, fixture.line) << fixture.file;
  }
}

TEST(TvegLint, CleanFixtureHasNoFindings) {
  const auto findings = lint_source("clean.cpp", read_corpus("clean.cpp"));
  for (const auto& finding : findings) ADD_FAILURE() << to_string(finding);
}

TEST(TvegLint, HeaderIsolationFlagsNonSelfContainedHeader) {
  Options options;
  options.compiler = "c++";
  const auto findings = lint_header_isolation(
      corpus_path("bad_header_not_self_contained.hpp"), options);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "header-not-self-contained");
}

TEST(TvegLint, CommentsAndStringsDoNotTrigger) {
  const std::string text =
      "// std::rand() and system_clock in a comment\n"
      "/* float acc; srand(1); */\n"
      "const char* doc = \"random_device, time( and float\";\n";
  EXPECT_TRUE(lint_source("doc.cpp", text).empty());
}

TEST(TvegLint, SuppressionCommentSilencesOneLine) {
  const std::string bad = "int x = rand();\n";
  ASSERT_EQ(lint_source("s.cpp", bad).size(), 1u);
  const std::string ok =
      "int x = rand();  // tveg-lint: allow(no-unseeded-rng)\n";
  EXPECT_TRUE(lint_source("s.cpp", ok).empty());
}

TEST(TvegLint, RngAndDeadlineFilesAreExemptFromTheirRules) {
  EXPECT_TRUE(
      lint_source("src/support/rng.cpp", "auto d = std::random_device{};\n")
          .empty());
  EXPECT_EQ(
      lint_source("src/fault/plan.cpp", "auto d = std::random_device{};\n")
          .size(),
      1u);
  EXPECT_TRUE(lint_source("src/support/deadline.hpp",
                          "auto t = std::chrono::system_clock::now();\n")
                  .empty());
}

TEST(TvegLint, SteadyClockIsAllowed) {
  EXPECT_TRUE(lint_source("src/core/eedcb.cpp",
                          "auto t = std::chrono::steady_clock::now();\n")
                  .empty());
}

TEST(TvegLint, GuardedResultAccessIsClean) {
  const std::string guarded =
      "double f(const support::Result<double>& r) {\n"
      "  if (!r.ok()) return 0;\n"
      "  return r.value();\n"
      "}\n";
  EXPECT_TRUE(lint_source("g.cpp", guarded).empty());
  const std::string moved =
      "double f(support::Result<double> r) {\n"
      "  if (!r.ok()) return 0;\n"
      "  return std::move(r).value();\n"
      "}\n";
  EXPECT_TRUE(lint_source("m.cpp", moved).empty());
}

TEST(TvegLint, MetricKeyLiteralsAreValidatedAcrossLineBreaks) {
  const std::string wrapped =
      "void f(obs::MetricsRegistry& r) {\n"
      "  r.counter(\n"
      "      \"bogus.wrapped.key\").add(1);\n"
      "}\n";
  const auto findings = lint_source("w.cpp", wrapped);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "metrics-key");
  EXPECT_EQ(findings[0].line, 3);
}

TEST(TvegLint, ConcatenatedMetricKeyPrefixPasses) {
  const std::string dynamic =
      "void f(obs::MetricsRegistry& r, const std::string& s) {\n"
      "  r.counter(\"tveg.pool.worker\" + s).add(1);\n"
      "}\n";
  EXPECT_TRUE(lint_source("d.cpp", dynamic).empty());
}

TEST(TvegLint, SpanFixturePinsBothWallClockRules) {
  // The fixture's filename contains "span", so its system_clock read is hit
  // by the base rule AND the scoped variant, on the same line.
  const auto findings =
      lint_source("bad_no_wall_clock_in_spans.cpp",
                  read_corpus("bad_no_wall_clock_in_spans.cpp"));
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "no-wall-clock");
  EXPECT_EQ(findings[0].line, 10);
  EXPECT_EQ(findings[1].rule, "no-wall-clock-in-spans");
  EXPECT_EQ(findings[1].line, 10);
}

TEST(TvegLint, SteadyClockIsAllowedInSpanFilesOnly) {
  // Span-scoped files may read steady_clock (trace timestamps must be
  // monotone)...
  EXPECT_TRUE(lint_source("src/obs/span.cpp",
                          "auto t = std::chrono::steady_clock::now();\n")
                  .empty());
  // ...but flight-recorder files must not touch <chrono> at all: dumps are
  // byte-stable, so payloads carry logical sequence numbers only.
  const auto findings =
      lint_source("src/obs/flight_recorder.cpp",
                  "auto t = std::chrono::steady_clock::now();\n");
  ASSERT_FALSE(findings.empty());
  for (const auto& f : findings)
    EXPECT_EQ(f.rule, "no-wall-clock-in-spans") << to_string(f);
}

TEST(TvegLint, FlightRecorderScopeHonorsSuppressions) {
  const std::string ok =
      "#include <chrono>  // tveg-lint: allow(no-wall-clock-in-spans)\n";
  EXPECT_TRUE(lint_source("src/obs/flight_recorder.hpp", ok).empty());
}

TEST(TvegLint, RuleIdsAreStable) {
  const std::vector<std::string> expected = {
      "no-unseeded-rng", "no-wall-clock",          "unchecked-result",
      "metrics-key",     "no-float",               "header-not-self-contained",
      "no-wall-clock-in-spans",                    "no-unbudgeted-pool-loop",
      "no-core-include-in-certify",                "no-map-in-hot-path",
  };
  EXPECT_EQ(rule_ids(), expected);
}

TEST(TvegLint, MapInHotPathFlaggedInHotHeadersOnly) {
  const std::string map_member =
      "struct S { std::unordered_map<int, double> cache_; };\n";
  const std::string nested_vector =
      "struct S { std::vector<std::vector<double>> rows_; };\n";
  // Hot-path headers: src/graph/ and the aux-graph header.
  auto findings = lint_source("src/graph/steiner.hpp", map_member);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "no-map-in-hot-path");
  EXPECT_EQ(lint_source("src/core/aux_graph.hpp", nested_vector).size(), 1u);
  // Out of scope: .cpp files (query-local scratch is fine), non-hot layers.
  EXPECT_TRUE(lint_source("src/graph/steiner.cpp", map_member).empty());
  EXPECT_TRUE(lint_source("src/core/solve_many.hpp", map_member).empty());
  EXPECT_TRUE(lint_source("src/support/config.hpp", nested_vector).empty());
  // Flat containers in scope stay clean.
  EXPECT_TRUE(lint_source("src/graph/digraph.hpp",
                          "struct S { std::vector<double> dist_;\n"
                          "  std::vector<std::pair<double, int>> heap_; };\n")
                  .empty());
  // Suppressible like every other rule, with a defending comment.
  const std::string allowed =
      "struct S { std::unordered_map<int, double> memo_; };"
      "  // cold-path memo; tveg-lint: allow(no-map-in-hot-path)\n";
  EXPECT_TRUE(lint_source("src/graph/steiner.hpp", allowed).empty());
}

TEST(TvegLint, UnbudgetedPoolLoopFlaggedInSolverLayersOnly) {
  const std::string bare =
      "void f() { pool.parallel_for(0, n, [&](std::size_t i) { w(i); }); }\n";
  // Solver layers: flagged.
  const auto findings = lint_source("src/core/hot.cpp", bare);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "no-unbudgeted-pool-loop");
  // support/ hosts the mechanism itself and stays out of scope.
  EXPECT_TRUE(lint_source("src/support/thread_pool.cpp", bare).empty());
  // A visible cancel token (or budget poll) in the call region is clean.
  const std::string tokened =
      "void f() { pool.parallel_for(0, n, body, budget.cancel); }\n";
  EXPECT_TRUE(lint_source("src/graph/hot.cpp", tokened).empty());
  const std::string polled =
      "void f() { pool.parallel_for(0, n, [&](std::size_t i) {\n"
      "  options.budget.check(\"hot\"); w(i); }); }\n";
  EXPECT_TRUE(lint_source("src/sim/hot.cpp", polled).empty());
  // Suppressible like every other rule (allow comments are per-line).
  const std::string allowed =
      "void f() { pool.parallel_for(0, n, body); }"
      "  // tveg-lint: allow(no-unbudgeted-pool-loop)\n";
  EXPECT_TRUE(lint_source("src/nlp/hot.cpp", allowed).empty());
}

TEST(TvegLint, AuditFlagsStaleAndUnknownSuppressionsOnly) {
  const auto findings =
      audit_file_suppressions("bad_stale_suppression.cpp",
                              read_corpus("bad_stale_suppression.cpp"));
  ASSERT_EQ(findings.size(), 2u);
  // Line 8: allow(no-wall-clock) with nothing wall-clock on the line.
  EXPECT_EQ(findings[0].rule, "stale-suppression");
  EXPECT_EQ(findings[0].line, 8);
  EXPECT_NE(findings[0].message.find("no-wall-clock"), std::string::npos);
  // Line 9: allow(no-such-rule) names a rule tveg-lint does not have.
  EXPECT_EQ(findings[1].rule, "stale-suppression");
  EXPECT_EQ(findings[1].line, 9);
  EXPECT_NE(findings[1].message.find("no-such-rule"), std::string::npos);
  // The live allow(no-unseeded-rng) on line 12 produced no third finding.
}

TEST(TvegLint, AuditPassesLoadBearingSuppressions) {
  const std::string live =
      "int f() { return rand(); }  // tveg-lint: allow(no-unseeded-rng)\n";
  EXPECT_TRUE(audit_file_suppressions("s.cpp", live).empty());
  // header-not-self-contained pragmas sit at file scope, not on a finding
  // line, so the per-line audit exempts them rather than cry stale.
  const std::string header_pragma =
      "// tveg-lint: allow(header-not-self-contained)\n";
  EXPECT_TRUE(audit_file_suppressions("h.hpp", header_pragma).empty());
}

TEST(TvegLint, CoreIncludeFlaggedOnlyInCertifyScope) {
  const std::string bad = "#include \"core/eedcb.hpp\"\n";
  // Certifier sources: flagged, for both solver layers and DTS headers.
  EXPECT_EQ(lint_source("src/tools/certify/certify.cpp", bad).size(), 1u);
  EXPECT_EQ(lint_source("src/tools/certify/certify.cpp",
                        "#include \"tvg/dts.hpp\"\n")
                .size(),
            1u);
  // Allowed dependency set: clean.
  EXPECT_TRUE(lint_source("src/tools/certify/certify.cpp",
                          "#include \"support/math.hpp\"\n"
                          "#include \"trace/contact_trace.hpp\"\n"
                          "#include \"channel/radio.hpp\"\n"
                          "#include \"tvg/types.hpp\"\n"
                          "#include \"tools/certify/certify.hpp\"\n")
                  .empty());
  // Outside the certifier (and in its own tests, which legitimately drive
  // the solvers): not flagged.
  EXPECT_TRUE(lint_source("src/core/eedcb.cpp", bad).empty());
  EXPECT_TRUE(
      lint_source("tests/certify/certify_sweep_test.cpp", bad).empty());
  // Suppressible like every other rule.
  EXPECT_TRUE(
      lint_source("src/tools/certify/certify.cpp",
                  "#include \"core/eedcb.hpp\"  "
                  "// tveg-lint: allow(no-core-include-in-certify)\n")
          .empty());
}

}  // namespace
}  // namespace tveg::lint
