#!/usr/bin/env bash
# Bench regression gate: runs the gated benches (micro_dts, micro_steiner,
# micro_aux, online_vs_offline), compares their BENCH_*.json timings against
# the
# committed baselines in bench/baselines/, and fails on
#   * any benchmark whose wall time regressed more than the tolerance
#     (default 15%, override with TVEG_BENCH_TOLERANCE=0.25), or
#   * the parallel-pipeline acceptance bar: BM_EedcbPipelineCachedPool must
#     be >= 2x faster than BM_EedcbPipelineSerial on the largest scenario.
#
# When a bench regresses, the gate attributes the regression: it diffs the
# per-phase breakdown ("phases" in the report — wall_ms + p50/p95/p99 from
# the obs histograms) between the baseline and the current run and names the
# phase(s) whose wall time grew the most.
#
# Usage: scripts/bench_gate.sh [--update] [--skip-run]
#   --update    rewrite the committed baselines from this run's results
#   --skip-run  compare the JSONs already present in the work dir (debug aid)
#
# BASELINE_DIR / WORK_DIR may be overridden via the environment (the
# attribution regression test points them at synthetic fixtures).
#
# Baselines are machine-dependent; after moving CI hardware, re-run with
# --update and commit the refreshed bench/baselines/.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-${REPO_ROOT}/build}"
BASELINE_DIR="${BASELINE_DIR:-${REPO_ROOT}/bench/baselines}"
WORK_DIR="${WORK_DIR:-${BUILD_DIR}/bench-gate}"
TOLERANCE="${TVEG_BENCH_TOLERANCE:-0.15}"
BENCHES=(micro_dts micro_steiner micro_aux online_vs_offline)

UPDATE=0
SKIP_RUN=0
for arg in "$@"; do
  case "$arg" in
    --update) UPDATE=1 ;;
    --skip-run) SKIP_RUN=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

if [[ "${SKIP_RUN}" -eq 0 ]]; then
  cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" >/dev/null
  cmake --build "${BUILD_DIR}" -j "$(nproc 2>/dev/null || echo 4)" \
        --target "${BENCHES[@]}" >/dev/null
  mkdir -p "${WORK_DIR}"
  for bench in "${BENCHES[@]}"; do
    echo "==== [bench_gate] running ${bench} ===="
    (cd "${WORK_DIR}" && "${BUILD_DIR}/bench/${bench}" > "${bench}.log" 2>&1) \
      || { echo "${bench} failed; see ${WORK_DIR}/${bench}.log"; exit 1; }
  done
fi

if [[ "${UPDATE}" -eq 1 ]]; then
  mkdir -p "${BASELINE_DIR}"
  for bench in "${BENCHES[@]}"; do
    cp "${WORK_DIR}/BENCH_${bench}.json" "${BASELINE_DIR}/"
  done
  echo "baselines updated in ${BASELINE_DIR}; review and commit them"
  exit 0
fi

python3 - "$BASELINE_DIR" "$WORK_DIR" "$TOLERANCE" "${BENCHES[@]}" <<'PYEOF'
import json
import sys

baseline_dir, work_dir, tolerance = sys.argv[1], sys.argv[2], float(sys.argv[3])
benches = sys.argv[4:]

def load_doc(path):
    with open(path) as f:
        return json.load(f)

def timings(doc):
    return {t["name"]: t["real_ms"] for t in doc.get("timings", [])}

def phases(doc):
    return {p["name"]: p for p in doc.get("phases", [])}

def attribute(base_doc, cur_doc):
    """Per-phase wall-time deltas, worst growth first.

    Returns [(name, base_ms, cur_ms, delta_ms, ratio)] for phases whose wall
    time grew; the head of the list is the phase to blame for a bench-level
    regression."""
    base, cur = phases(base_doc), phases(cur_doc)
    out = []
    for name, p in cur.items():
        b = base.get(name, {}).get("wall_ms", 0.0)
        c = p.get("wall_ms", 0.0)
        if c > b:
            out.append((name, b, c, c - b, c / b if b > 0 else float("inf")))
    out.sort(key=lambda r: -r[3])
    return out

failures = []
rows = []
pipeline = {}

for bench in benches:
    try:
        base_doc = load_doc(f"{baseline_dir}/BENCH_{bench}.json")
    except FileNotFoundError:
        failures.append(
            f"{bench}: no committed baseline — run scripts/bench_gate.sh "
            "--update and commit bench/baselines/")
        continue
    cur_doc = load_doc(f"{work_dir}/BENCH_{bench}.json")
    base, cur = timings(base_doc), timings(cur_doc)
    bench_regressed = False
    for name in sorted(base):
        if name not in cur:
            failures.append(f"{bench}: benchmark '{name}' disappeared")
            continue
        old, new = base[name], cur[name]
        ratio = new / old if old > 0 else float("inf")
        verdict = "ok"
        if ratio > 1 + tolerance:
            verdict = "REGRESSED"
            bench_regressed = True
            failures.append(
                f"{bench}: {name} regressed {ratio:.2f}x "
                f"({old:.2f} ms -> {new:.2f} ms, tolerance {tolerance:.0%})")
        elif ratio < 1 / (1 + tolerance):
            verdict = "improved"
        rows.append((bench, name, old, new, ratio, verdict))
        if name.startswith("BM_EedcbPipeline"):
            kind, _, arg = name.partition("/")
            pipeline.setdefault(int(arg), {})[kind] = new
    for name in sorted(set(cur) - set(base)):
        rows.append((bench, name, float("nan"), cur[name], float("nan"),
                     "new (no baseline)"))

    if bench_regressed:
        blamed = attribute(base_doc, cur_doc)
        if blamed:
            name, b, c, delta, pratio = blamed[0]
            detail = ", ".join(
                f"{n} (+{d:.2f} ms)" for n, _, _, d, _ in blamed[:3])
            failures.append(
                f"{bench}: slowest-regressing phase is '{name}' "
                f"({b:.2f} ms -> {c:.2f} ms, +{delta:.2f} ms, "
                f"{pratio:.2f}x); top phase deltas: {detail}")
        else:
            failures.append(
                f"{bench}: no phase grew vs baseline — regression is "
                "outside the traced phases (harness, allocator, machine)")

print(f"{'bench':<18} {'benchmark':<34} {'base ms':>10} {'now ms':>10} "
      f"{'ratio':>7}  verdict")
for bench, name, old, new, ratio, verdict in rows:
    old_s = f"{old:10.2f}" if old == old else "         -"
    ratio_s = f"{ratio:7.2f}" if ratio == ratio else "      -"
    print(f"{bench:<18} {name:<34} {old_s} {new:10.2f} {ratio_s}  {verdict}")

# Acceptance bar: cached + pooled pipeline >= 2x serial on the largest
# scenario present in BENCH_micro_steiner.json.
if pipeline:
    largest = max(pipeline)
    pair = pipeline[largest]
    serial = pair.get("BM_EedcbPipelineSerial")
    pooled = pair.get("BM_EedcbPipelineCachedPool")
    if serial is None or pooled is None:
        failures.append("micro_steiner: pipeline serial/cached pair missing")
    else:
        speedup = serial / pooled
        print(f"\nparallel pipeline speedup at N={largest}: {speedup:.2f}x "
              f"(serial {serial:.1f} ms / cached+pool {pooled:.1f} ms)")
        if speedup < 2.0:
            failures.append(
                f"pipeline speedup {speedup:.2f}x < 2x at N={largest}")
else:
    failures.append("micro_steiner: no BM_EedcbPipeline* timings found")

if failures:
    print("\nbench gate FAILED:")
    for f in failures:
        print(f"  - {f}")
    sys.exit(1)
print("\nbench gate passed")
PYEOF
