#!/usr/bin/env bash
# Static-analysis driver: clang-tidy over every translation unit in src/
# (tuned check set in .clang-tidy, any finding fails), then the project's
# own tveg-lint invariant checker — text rules plus isolated-compilation
# header checks. DESIGN.md "Static analysis & concurrency correctness"
# documents the rule set; scripts/ci.sh runs this as its lint stage.
#
# Usage: scripts/lint.sh [--no-headers]
#   --no-headers   skip the (slow, ~30 s) isolated header compiles
#
# clang-tidy availability: the stage is gated on finding a clang-tidy
# binary. On toolchains without one (e.g. a gcc-only container) the stage
# is skipped with a notice — tveg-lint still runs and still gates the
# pipeline. Set TVEG_CLANG_TIDY to force a specific binary.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
BUILD_DIR="${TVEG_LINT_BUILD_DIR:-${REPO_ROOT}/build-lint}"
CHECK_HEADERS=1
[[ "${1:-}" == "--no-headers" ]] && CHECK_HEADERS=0

GENERATOR=()
command -v ninja >/dev/null 2>&1 && GENERATOR=(-G Ninja)

find_clang_tidy() {
  if [[ -n "${TVEG_CLANG_TIDY:-}" ]]; then
    echo "${TVEG_CLANG_TIDY}"
    return 0
  fi
  local candidate
  for candidate in clang-tidy clang-tidy-{20,19,18,17,16,15,14}; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      command -v "${candidate}"
      return 0
    fi
  done
  for candidate in /usr/lib/llvm-*/bin/clang-tidy; do
    [[ -x "${candidate}" ]] && { echo "${candidate}"; return 0; }
  done
  return 1
}

echo "==== [lint] configure (compile_commands.json + tveg-lint) ===="
cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" "${GENERATOR[@]}" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "${BUILD_DIR}" --target tveg-lint -j "${JOBS}"

if CLANG_TIDY="$(find_clang_tidy)"; then
  echo "==== [lint] clang-tidy (${CLANG_TIDY}) over src/ ===="
  # WarningsAsErrors: '*' in .clang-tidy makes any finding a hard failure.
  find "${REPO_ROOT}/src" -name '*.cpp' -print0 |
    xargs -0 -n 8 -P "${JOBS}" "${CLANG_TIDY}" -p "${BUILD_DIR}" --quiet
  echo "clang-tidy: clean"
else
  echo "==== [lint] clang-tidy not found — stage skipped ===="
  echo "(install clang-tidy or set TVEG_CLANG_TIDY to enable; tveg-lint"
  echo " below still gates this pipeline)"
fi

echo "==== [lint] tveg-lint invariant checker ===="
TVEG_LINT_ARGS=(--root "${REPO_ROOT}/src")
if [[ "${CHECK_HEADERS}" -eq 1 ]]; then
  TVEG_LINT_ARGS+=(--check-headers --include "${REPO_ROOT}/src"
                   --compiler "${CXX:-c++}")
fi
"${BUILD_DIR}/src/tools/tveg-lint" "${TVEG_LINT_ARGS[@]}"

echo "==== lint green ===="
