#!/usr/bin/env bash
# Static-analysis driver, both layers (DESIGN.md "Static analysis &
# concurrency correctness"):
#
#   layer 1 (compiler)  clang-tidy over every TU (tuned check set in
#                       .clang-tidy, any finding fails) and, when a clang++
#                       is available, a -DTVEG_THREAD_SAFETY=ON build that
#                       makes every lock-discipline violation a compile
#                       error (-Werror=thread-safety).
#   layer 2 (project)   tveg-lint — per-file text rules + isolated header
#                       compiles + stale-suppression audit — and
#                       tveg-analyze — the cross-TU invariant checker
#                       (metric/flight manifests, lock-order graph,
#                       noexcept exception boundaries), driven by the build
#                       dir's compile_commands.json.
#
# Usage: scripts/lint.sh [--no-headers] [--lint-only]
#   --no-headers   skip the (slow, ~30 s) isolated header compiles
#   --lint-only    fast path: only the project tools (tveg-lint text rules
#                  + suppression audit + tveg-analyze). Skips clang-tidy,
#                  the thread-safety build and the header compiles. This is
#                  what scripts/ci.sh --fast runs — tveg-analyze is never
#                  skipped, at any speed setting.
#
# Build-dir reuse: the tools are built in ${TVEG_LINT_BUILD_DIR:-build-lint}
# and the configure+build is incremental, so repeated runs only pay for what
# changed. scripts/ci.sh points TVEG_LINT_BUILD_DIR at its own build-ci
# tree, so the lint stage reuses the plain stage's objects instead of
# configuring a second build from scratch.
#
# clang availability: both layer-1 stages are gated on finding the binary
# (clang-tidy / clang++). On toolchains without them (e.g. a gcc-only
# container) the stage is skipped with a notice — layer 2 still runs and
# still gates the pipeline. Pin specific binaries with TVEG_CLANG_TIDY=
# (exact clang-tidy to run — version-suffixed names and /usr/lib/llvm-*/bin
# are probed otherwise) and TVEG_CLANGXX= (exact clang++ for the
# thread-safety build; also honored by the analyze.thread_safety_compile_fail
# ctest).
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
BUILD_DIR="${TVEG_LINT_BUILD_DIR:-${REPO_ROOT}/build-lint}"
CHECK_HEADERS=1
LINT_ONLY=0
for arg in "$@"; do
  case "${arg}" in
    --no-headers) CHECK_HEADERS=0 ;;
    --lint-only) LINT_ONLY=1; CHECK_HEADERS=0 ;;
    *) echo "unknown argument: ${arg}" >&2; exit 2 ;;
  esac
done

# Pick ninja for fresh build dirs only: when TVEG_LINT_BUILD_DIR points at
# an already-configured tree (ci.sh reusing build-ci), forcing a generator
# that differs from the one cached there is a hard cmake error.
GENERATOR=()
if command -v ninja >/dev/null 2>&1 && [[ ! -f "${BUILD_DIR}/CMakeCache.txt" ]]
then
  GENERATOR=(-G Ninja)
fi

find_clang_tidy() {
  if [[ -n "${TVEG_CLANG_TIDY:-}" ]]; then
    echo "${TVEG_CLANG_TIDY}"
    return 0
  fi
  local candidate
  for candidate in clang-tidy clang-tidy-{20,19,18,17,16,15,14}; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      command -v "${candidate}"
      return 0
    fi
  done
  for candidate in /usr/lib/llvm-*/bin/clang-tidy; do
    [[ -x "${candidate}" ]] && { echo "${candidate}"; return 0; }
  done
  return 1
}

find_clangxx() {
  if [[ -n "${TVEG_CLANGXX:-}" ]]; then
    echo "${TVEG_CLANGXX}"
    return 0
  fi
  local candidate
  for candidate in clang++ clang++-{20,19,18,17,16,15,14}; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      command -v "${candidate}"
      return 0
    fi
  done
  return 1
}

echo "==== [lint] configure (compile_commands.json + tveg-lint/-analyze) ===="
cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" "${GENERATOR[@]}" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "${BUILD_DIR}" --target tveg-lint tveg-analyze -j "${JOBS}"

if [[ "${LINT_ONLY}" -eq 0 ]]; then
  if CLANG_TIDY="$(find_clang_tidy)"; then
    echo "==== [lint] clang-tidy (${CLANG_TIDY}) over src/ ===="
    # WarningsAsErrors: '*' in .clang-tidy makes any finding a hard failure.
    find "${REPO_ROOT}/src" -name '*.cpp' -print0 |
      xargs -0 -n 8 -P "${JOBS}" "${CLANG_TIDY}" -p "${BUILD_DIR}" --quiet
    echo "clang-tidy: clean"
  else
    echo "==== [lint] clang-tidy not found — stage skipped ===="
    echo "(install clang-tidy or set TVEG_CLANG_TIDY to enable; the project"
    echo " tools below still gate this pipeline)"
  fi

  if CLANGXX="$(find_clangxx)"; then
    # Layer-1 lock discipline: a dedicated clang build with the capability
    # attributes fatal. Incremental like the main lint dir, and kept
    # separate from it so the gcc/clang object files never mix.
    echo "==== [lint] clang thread-safety build (${CLANGXX}) ===="
    cmake -B "${REPO_ROOT}/build-lint-ts" -S "${REPO_ROOT}" "${GENERATOR[@]}" \
          -DCMAKE_BUILD_TYPE=RelWithDebInfo \
          -DCMAKE_CXX_COMPILER="${CLANGXX}" \
          -DTVEG_THREAD_SAFETY=ON >/dev/null
    cmake --build "${REPO_ROOT}/build-lint-ts" -j "${JOBS}"
    echo "thread-safety: clean"
  else
    echo "==== [lint] clang++ not found — thread-safety build skipped ===="
    echo "(install clang or set TVEG_CLANGXX to enable -Werror=thread-safety)"
  fi
fi

echo "==== [lint] tveg-lint invariant checker ===="
TVEG_LINT_ARGS=(--root "${REPO_ROOT}/src")
if [[ "${CHECK_HEADERS}" -eq 1 ]]; then
  TVEG_LINT_ARGS+=(--check-headers --include "${REPO_ROOT}/src"
                   --compiler "${CXX:-c++}")
fi
"${BUILD_DIR}/src/tools/tveg-lint" "${TVEG_LINT_ARGS[@]}"

echo "==== [lint] tveg-lint suppression audit ===="
"${BUILD_DIR}/src/tools/tveg-lint" --root "${REPO_ROOT}/src" \
    --audit-suppressions

echo "==== [lint] tveg-analyze cross-TU invariants ===="
"${BUILD_DIR}/src/tools/tveg-analyze" --root "${REPO_ROOT}/src" \
    --compdb "${BUILD_DIR}/compile_commands.json"

echo "==== lint green ===="
