#!/usr/bin/env bash
# Regenerate the golden-schedule fixtures under tests/golden/fixtures/.
#
# Run this ONLY after an intentional change to schedule output, review the
# fixture diff, and commit the new fixtures together with the change that
# moved them. A drifting fixture you did not expect is a bug, not a reason
# to regenerate.
#
# Every schedule is run through the independent certifier (tveg-certify's
# certify::verify) BEFORE the fixture file is written; a schedule that
# fails certification aborts the regen, so an infeasible fixture can never
# be committed.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" --target golden_tests -j >/dev/null

TVEG_REGEN_GOLDEN=1 "$BUILD_DIR/tests/golden_tests"
echo "Regenerated fixtures:"
git -c color.status=always status --short tests/golden/fixtures/ || true
