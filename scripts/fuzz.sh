#!/usr/bin/env bash
# Fuzz driver, two modes picked automatically:
#
#   clang present   configure build-fuzz with -DTVEG_FUZZ=ON under clang
#                   and run each libFuzzer target coverage-guided for
#                   FUZZ_SECONDS (default 30) seconds, seeded from the
#                   pinned corpus. New crashing inputs land in
#                   build-fuzz/artifacts/ — minimize them and commit the
#                   reproducer into tests/fuzz/corpus/<target>/.
#
#   gcc only        build the replay drivers in the plain tree and re-run
#                   the pinned corpus through them (the same check the
#                   fuzz.corpus_replay ctests run on every suite run).
#
# Usage: scripts/fuzz.sh [--replay-only]
#   --replay-only  skip coverage-guided fuzzing even when clang exists
#                  (CI smoke uses this on runners without clang anyway)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
FUZZ_SECONDS="${FUZZ_SECONDS:-30}"
REPLAY_ONLY=0
for arg in "$@"; do
  case "${arg}" in
    --replay-only) REPLAY_ONLY=1 ;;
    *) echo "unknown argument: ${arg}" >&2; exit 2 ;;
  esac
done

CORPUS="${REPO_ROOT}/tests/fuzz/corpus"
declare -A SEEDS=(
  [trace_parse]="${REPO_ROOT}/tests/trace/corpus ${CORPUS}/trace"
  [schedule_io]="${CORPUS}/schedule ${REPO_ROOT}/tests/certify/corpus"
  [cli_args]="${CORPUS}/cli"
)

if [[ "${REPLAY_ONLY}" -eq 0 ]] && command -v clang++ >/dev/null 2>&1; then
  BUILD="${REPO_ROOT}/build-fuzz"
  echo "==== [fuzz] coverage-guided (clang + libFuzzer), ${FUZZ_SECONDS}s/target ===="
  cmake -B "${BUILD}" -S "${REPO_ROOT}" -DTVEG_FUZZ=ON \
        -DCMAKE_CXX_COMPILER=clang++ -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "${BUILD}" -j "${JOBS}" \
        --target fuzz_trace_parse fuzz_schedule_io fuzz_cli_args
  mkdir -p "${BUILD}/artifacts"
  for target in trace_parse schedule_io cli_args; do
    work="${BUILD}/corpus-${target}"
    mkdir -p "${work}"
    echo "==== [fuzz] ${target} ===="
    # shellcheck disable=SC2086
    "${BUILD}/tests/fuzz_${target}" "${work}" ${SEEDS[${target}]} \
        -max_total_time="${FUZZ_SECONDS}" -timeout=10 -rss_limit_mb=2048 \
        -artifact_prefix="${BUILD}/artifacts/${target}-"
  done
  echo "==== [fuzz] clean: no crashes in ${FUZZ_SECONDS}s/target ===="
else
  BUILD="${BUILD_DIR:-${REPO_ROOT}/build}"
  echo "==== [fuzz] replay mode (no clang): pinned corpus through replay drivers ===="
  cmake -B "${BUILD}" -S "${REPO_ROOT}" >/dev/null
  cmake --build "${BUILD}" -j "${JOBS}" \
        --target fuzz_trace_parse_replay fuzz_schedule_io_replay \
                 fuzz_cli_args_replay >/dev/null
  for target in trace_parse schedule_io cli_args; do
    # shellcheck disable=SC2086
    "${BUILD}/tests/fuzz_${target}_replay" ${SEEDS[${target}]}
  done
  echo "==== [fuzz] clean: corpus replayed without findings ===="
fi
