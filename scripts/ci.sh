#!/usr/bin/env bash
# CI driver, five stages:
#   plain  build (TVEG_WERROR=ON: -Werror + the hardened -Wconversion
#          -Wdouble-promotion -Wnon-virtual-dtor tier) + full test suite
#   lint   scripts/lint.sh — clang-tidy (when available) + tveg-lint
#   asan   suite under AddressSanitizer; also drives the malformed-input
#          trace corpus through the CLI parser, so every rejection path
#          runs under ASan with real file I/O
#   ubsan  suite under UndefinedBehaviorSanitizer
#   tsan   suite under ThreadSanitizer — the ThreadPool / Monte-Carlo /
#          parallel-solve stress tests provoke the contention TSan needs
#
# Usage: scripts/ci.sh [--fast] [--bench]
#   --fast   plain build + ctest only (skips lint and all sanitizer tiers)
#   --bench  additionally run scripts/bench_gate.sh (bench regression gate)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
FAST=0
BENCH=0
for arg in "$@"; do
  case "${arg}" in
    --fast) FAST=1 ;;
    --bench) BENCH=1 ;;
    *) echo "unknown argument: ${arg}" >&2; exit 2 ;;
  esac
done

GENERATOR=()
command -v ninja >/dev/null 2>&1 && GENERATOR=(-G Ninja)

run_suite() {
  local name="$1" build_dir="$2"
  shift 2
  echo "==== [${name}] configure ===="
  cmake -B "${build_dir}" -S "${REPO_ROOT}" "${GENERATOR[@]}" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo "$@"
  echo "==== [${name}] build ===="
  cmake --build "${build_dir}" -j "${JOBS}"
  echo "==== [${name}] ctest ===="
  ctest --test-dir "${build_dir}" -j "${JOBS}" --output-on-failure
}

drive_corpus() {
  # Feed every malformed trace in the corpus to the real CLI under the
  # sanitized binary; each must be rejected with a clean exit code 2 (a
  # crash or sanitizer report fails the pipeline via the exit-code check).
  local build_dir="$1"
  local tmedb="${build_dir}/src/cli/tmedb"
  local corpus="${REPO_ROOT}/tests/trace/corpus"
  echo "==== [asan] malformed-input corpus through the CLI ===="
  local n=0
  for f in "${corpus}"/*.trace; do
    local rc=0
    "${tmedb}" stats "$f" >/dev/null 2>&1 || rc=$?
    if [[ "${rc}" -ne 2 ]]; then
      echo "corpus file ${f} exited with ${rc}, expected clean rejection (2)"
      exit 1
    fi
    n=$((n + 1))
  done
  echo "corpus: ${n} malformed traces cleanly rejected under ASan"
}

# CI builds the plain suite with the hardened warning tier fatal; the
# sanitizer suites keep TVEG_WERROR off so a sanitizer-instrumentation
# quirk can never mask a real race/overflow report behind a build failure.
run_suite "plain" "${REPO_ROOT}/build-ci" -DTVEG_WERROR=ON

if [[ "${FAST}" -eq 0 ]]; then
  echo "==== [lint] scripts/lint.sh ===="
  "${REPO_ROOT}/scripts/lint.sh"
  run_suite "asan" "${REPO_ROOT}/build-asan" -DTVEG_SANITIZE=address
  drive_corpus "${REPO_ROOT}/build-asan"
  run_suite "ubsan" "${REPO_ROOT}/build-ubsan" -DTVEG_SANITIZE=undefined
  run_suite "tsan" "${REPO_ROOT}/build-tsan" -DTVEG_SANITIZE=thread
fi

if [[ "${BENCH}" -eq 1 ]]; then
  echo "==== [bench] scripts/bench_gate.sh ===="
  BUILD_DIR="${REPO_ROOT}/build-ci" "${REPO_ROOT}/scripts/bench_gate.sh"
fi

echo "==== CI green ===="
