#!/usr/bin/env bash
# CI driver, seven stages:
#   plain  build (TVEG_WERROR=ON: -Werror + the hardened -Wconversion
#          -Wdouble-promotion -Wnon-virtual-dtor tier) + full test suite
#   obs    observability end-to-end: a threaded sweep with --trace-out and
#          --flight-out, an independent Python validation of the Perfetto
#          trace (worker tracks, queue waits, matched B/E pairs), plus the
#          trace-schema and span-overhead ctests re-run in isolation
#   lint   scripts/lint.sh — clang-tidy and the -Werror=thread-safety
#          build (both when clang is available) + tveg-lint (text rules,
#          header isolation, suppression audit) + tveg-analyze (cross-TU
#          manifests / lock order / noexcept boundaries). The stage reuses
#          this script's build-ci tree via TVEG_LINT_BUILD_DIR, so it adds
#          two tool links to an incremental build instead of a second
#          configure-from-scratch.
#   fuzz   scripts/fuzz.sh smoke: coverage-guided libFuzzer for a short
#          budget when clang is available, pinned-corpus replay through
#          the plain build's replay drivers otherwise
#   asan   suite under AddressSanitizer; also drives the malformed-input
#          trace corpus through the CLI parser, so every rejection path
#          runs under ASan with real file I/O
#   ubsan  suite under UndefinedBehaviorSanitizer
#   tsan   suite under ThreadSanitizer — the ThreadPool / Monte-Carlo /
#          parallel-solve stress tests provoke the contention TSan needs
#   soak   resource-governance soak: governed multi-worker sweeps through
#          the real CLI across budget ladders (including a zero budget that
#          sheds every request), both shed policies and a tight cache
#          budget, plus the CancelStorm suite re-run on the TSan build
#
# Usage: scripts/ci.sh [--fast] [--bench]
#   --fast   plain build + ctest + lint.sh --lint-only (skips obs, the
#            clang-tidy/thread-safety lint layers, the fuzz smoke, and the
#            sanitizer and soak tiers — but never tveg-lint or
#            tveg-analyze: the project invariant checkers gate every speed
#            setting; the fuzz.corpus_replay ctests still ran with the
#            plain suite)
#   --bench  additionally run scripts/bench_gate.sh (bench regression gate)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
FAST=0
BENCH=0
for arg in "$@"; do
  case "${arg}" in
    --fast) FAST=1 ;;
    --bench) BENCH=1 ;;
    *) echo "unknown argument: ${arg}" >&2; exit 2 ;;
  esac
done

GENERATOR=()
command -v ninja >/dev/null 2>&1 && GENERATOR=(-G Ninja)

run_suite() {
  local name="$1" build_dir="$2"
  shift 2
  echo "==== [${name}] configure ===="
  cmake -B "${build_dir}" -S "${REPO_ROOT}" "${GENERATOR[@]}" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo "$@"
  echo "==== [${name}] build ===="
  cmake --build "${build_dir}" -j "${JOBS}"
  echo "==== [${name}] ctest ===="
  ctest --test-dir "${build_dir}" -j "${JOBS}" --output-on-failure
}

drive_corpus() {
  # Feed every malformed trace in the corpus to the real CLI under the
  # sanitized binary; each must be rejected with a clean exit code 2 (a
  # crash or sanitizer report fails the pipeline via the exit-code check).
  local build_dir="$1"
  local tmedb="${build_dir}/src/cli/tmedb"
  local corpus="${REPO_ROOT}/tests/trace/corpus"
  echo "==== [asan] malformed-input corpus through the CLI ===="
  local n=0
  for f in "${corpus}"/*.trace; do
    local rc=0
    "${tmedb}" stats "$f" >/dev/null 2>&1 || rc=$?
    if [[ "${rc}" -ne 2 ]]; then
      echo "corpus file ${f} exited with ${rc}, expected clean rejection (2)"
      exit 1
    fi
    n=$((n + 1))
  done
  echo "corpus: ${n} malformed traces cleanly rejected under ASan"
}

# CI builds the plain suite with the hardened warning tier fatal; the
# sanitizer suites keep TVEG_WERROR off so a sanitizer-instrumentation
# quirk can never mask a real race/overflow report behind a build failure.
drive_obs() {
  # End-to-end observability check on the plain build: generate a small
  # trace, sweep it with 4 workers and both outputs armed, then validate the
  # Perfetto JSON independently of the in-binary validator — the sweep must
  # show at least two pool-worker tracks with queue-wait and phase spans.
  local build_dir="$1"
  local tmedb="${build_dir}/src/cli/tmedb"
  local work
  work="$(mktemp -d)"
  echo "==== [obs] threaded sweep with --trace-out / --flight-out ===="
  "${tmedb}" generate --kind snapshots --nodes 12 --horizon 2000 --seed 3 \
      --out "${work}/ci.trace"
  "${tmedb}" sweep "${work}/ci.trace" --from 1000 --to 2000 --step 500 \
      --threads 4 --trace-out "${work}/sweep.perfetto.json" \
      --flight-out "${work}/sweep.flight.txt"
  [[ -s "${work}/sweep.flight.txt" ]] || {
    echo "flight recorder produced no dump"; exit 1; }
  grep -q "flight-recorder:" "${work}/sweep.flight.txt" || {
    echo "flight dump header missing"; exit 1; }
  python3 - "${work}/sweep.perfetto.json" <<'PYEOF'
import collections
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
names = {e["args"]["name"]: e["tid"] for e in events
         if e["ph"] == "M" and e["name"] == "thread_name"}
workers = [n for n in names if n.startswith("pool-worker-")]
assert len(workers) >= 2, f"want >=2 worker tracks, got {sorted(names)}"
phases = {e["name"] for e in events if e["ph"] in ("B", "X")}
for want in ("queue_wait", "pool_task", "aux_dcs_fill"):
    assert want in phases, f"span '{want}' missing from {sorted(phases)}"
stacks = collections.defaultdict(list)
last_ts = collections.defaultdict(float)
for e in events:
    if e["ph"] not in ("B", "E"):
        continue
    tid = e["tid"]
    assert e["ts"] >= last_ts[tid], f"ts went backwards on tid {tid}"
    last_ts[tid] = e["ts"]
    if e["ph"] == "B":
        stacks[tid].append(e["name"])
    else:
        assert stacks[tid] and stacks[tid].pop() == e["name"], \
            f"unmatched E:{e['name']} on tid {tid}"
assert not any(stacks.values()), f"unclosed spans: {dict(stacks)}"
print(f"obs: {len(events)} events, {len(workers)} worker tracks, "
      f"{len(phases)} span names — trace is well-formed")
PYEOF
  rm -rf "${work}"
  echo "==== [obs] trace-schema + overhead ctests ===="
  ctest --test-dir "${build_dir}" --output-on-failure \
        -R 'Perfetto|Span|Overhead|FlightRecorder'
}

drive_soak() {
  # Governance soak on the plain build: the same trace swept governed under
  # a ladder of per-request budgets — unlimited, tight, and zero (which must
  # shed every request yet still exit 0 under the degrade policy) — with a
  # watchdog armed and the cache byte-budgeted, under both shed policies.
  # Then the cancellation-storm suite re-runs on the TSan build, where the
  # cross-thread cancel/watchdog traffic is instrumented.
  local build_dir="$1" tsan_dir="$2"
  local tmedb="${build_dir}/src/cli/tmedb"
  local work
  work="$(mktemp -d)"
  echo "==== [soak] governed sweeps across budget ladders ===="
  "${tmedb}" generate --kind snapshots --nodes 12 --horizon 2000 --seed 7 \
      --out "${work}/soak.trace"
  for budget in -1 50 0; do
    "${tmedb}" sweep "${work}/soak.trace" --from 1000 --to 2000 --step 500 \
        --threads 4 --request-budget-ms "${budget}" --stall-ms 30000 \
        --cache-budget-mb 1 --shed-policy degrade \
        > "${work}/sweep-${budget}.out"
  done
  # Zero budget + degrade: every EEDCB cell fell back — the * marker from
  # the fallback ladder must appear.
  grep -q '\*' "${work}/sweep-0.out" || {
    echo "zero-budget governed sweep produced no degraded cells"; exit 1; }
  # Zero budget + error policy: requests fail ('!') instead of degrading,
  # and the sweep still exits cleanly — isolation, not abort.
  "${tmedb}" sweep "${work}/soak.trace" --from 1000 --to 2000 --step 500 \
      --threads 4 --request-budget-ms 0 --shed-policy error \
      > "${work}/sweep-error.out"
  grep -q '!' "${work}/sweep-error.out" || {
    echo "zero-budget error-policy sweep reported no failed requests"; exit 1; }
  # Admission bound: with one slot, later requests are shed to GREED.
  "${tmedb}" run "${work}/soak.trace" --algorithm EEDCB --deadline 1500 \
      --threads 4 --max-inflight 1 --request-budget-ms 5000 \
      > "${work}/run-governed.out"
  grep -q 'solver rung' "${work}/run-governed.out" || {
    echo "governed run did not report its solver rung"; exit 1; }
  rm -rf "${work}"
  echo "==== [soak] CancelStorm suite on the TSan build ===="
  ctest --test-dir "${tsan_dir}" --output-on-failure -R 'CancelStorm'
}

run_suite "plain" "${REPO_ROOT}/build-ci" -DTVEG_WERROR=ON

drive_fuzz() {
  # Fuzz smoke: coverage-guided for a short budget when clang is on the
  # PATH, otherwise a corpus replay through the plain build's replay
  # drivers (scripts/fuzz.sh picks the mode). Either way the pinned corpus
  # must come through clean.
  echo "==== [fuzz] scripts/fuzz.sh smoke ===="
  FUZZ_SECONDS=10 BUILD_DIR="${REPO_ROOT}/build-ci" \
      "${REPO_ROOT}/scripts/fuzz.sh"
}

if [[ "${FAST}" -eq 1 ]]; then
  echo "==== [lint] scripts/lint.sh --lint-only ===="
  TVEG_LINT_BUILD_DIR="${REPO_ROOT}/build-ci" \
      "${REPO_ROOT}/scripts/lint.sh" --lint-only
else
  drive_obs "${REPO_ROOT}/build-ci"
  drive_fuzz
  echo "==== [lint] scripts/lint.sh ===="
  TVEG_LINT_BUILD_DIR="${REPO_ROOT}/build-ci" "${REPO_ROOT}/scripts/lint.sh"
  run_suite "asan" "${REPO_ROOT}/build-asan" -DTVEG_SANITIZE=address
  drive_corpus "${REPO_ROOT}/build-asan"
  run_suite "ubsan" "${REPO_ROOT}/build-ubsan" -DTVEG_SANITIZE=undefined
  run_suite "tsan" "${REPO_ROOT}/build-tsan" -DTVEG_SANITIZE=thread
  drive_soak "${REPO_ROOT}/build-ci" "${REPO_ROOT}/build-tsan"
fi

if [[ "${BENCH}" -eq 1 ]]; then
  echo "==== [bench] scripts/bench_gate.sh ===="
  BUILD_DIR="${REPO_ROOT}/build-ci" "${REPO_ROOT}/scripts/bench_gate.sh"
fi

echo "==== CI green ===="
